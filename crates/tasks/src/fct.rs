//! Fault chain tracing (paper Sec. V-D, Fig. 9): uncertain-KG completion
//! with a GTransE-style confidence-weighted margin loss (Eq. 24):
//!
//! `L = Σ_pos Σ_neg [ d(h,r,t) − d(h',r,t') + s^α · M ]₊`
//!
//! Node embeddings are initialized from the pre-trained service embeddings
//! (Eq. 23) instead of random vectors — the paper's key lever — and
//! evaluation is filtered link prediction over head and tail queries.
//!
//! The paper builds on NeuralKG, which offers a family of KGE scorers; we
//! implement four ([`KgeScorer`]) so the choice can be ablated: TransE
//! (the paper's GTransE base), TransH, DistMult and RotatE.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tele_datagen::downstream::fct::{FctDataset, FctFact};
use tele_tensor::{optim::AdamW, xavier_uniform, ParamId, ParamStore, Tape};

use crate::embeddings::EmbeddingTable;
use crate::metrics::RankMetrics;

/// The KGE scoring function used by the completion model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KgeScorer {
    /// `‖h + r − t‖₁` (the paper's GTransE base).
    TransE,
    /// Translation on a relation-specific hyperplane:
    /// `‖(h − (wᵣ·h)wᵣ) + dᵣ − (t − (wᵣ·t)wᵣ)‖₁`.
    TransH,
    /// Bilinear diagonal: `−Σ h ∘ r ∘ t` (negated similarity as distance).
    DistMult,
    /// Complex rotation: `‖h ∘ r − t‖₁` with `r` normalized to unit modulus.
    Rotate,
}

/// FCT task hyper-parameters (the paper uses margin loss with `s^α M`,
/// 1000 negatives on GPU; scaled for CPU).
#[derive(Clone, Debug)]
pub struct FctTaskConfig {
    /// Margin `M`.
    pub margin: f32,
    /// Confidence exponent `α`.
    pub alpha: f32,
    /// Negative samples per positive per step.
    pub negatives: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Scoring function.
    pub scorer: KgeScorer,
    /// RNG seed.
    pub seed: u64,
    /// Tensor device the task trains on.
    pub device: tele_tensor::DeviceKind,
}

impl Default for FctTaskConfig {
    fn default() -> Self {
        FctTaskConfig {
            margin: 2.0,
            alpha: 1.0,
            negatives: 8,
            epochs: 60,
            lr: 1e-2,
            scorer: KgeScorer::TransE,
            seed: 0,
            device: tele_tensor::device::current(),
        }
    }
}

struct FctModel {
    entities: ParamId,  // [n, d]
    relations: ParamId, // [r, d] (TransH: [r, 2d] — normal ++ translation)
    scorer: KgeScorer,
    dim: usize,
}

impl FctModel {
    fn new(
        store: &mut ParamStore,
        init: &EmbeddingTable,
        num_relations: usize,
        scorer: KgeScorer,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            scorer != KgeScorer::Rotate || init.dim.is_multiple_of(2),
            "RotatE needs an even embedding width"
        );
        let entities = store.create("fct.entities", init.tensor());
        let rel_width = if scorer == KgeScorer::TransH { 2 * init.dim } else { init.dim };
        let relations = store
            .create("fct.relations", xavier_uniform([num_relations, rel_width], rng).scale(0.5));
        FctModel { entities, relations, scorer, dim: init.dim }
    }

    /// Differentiable distance `[k]` for parallel (h, r, t) index lists.
    fn distance<'t>(
        &self,
        tape: &'t Tape,
        store: &ParamStore,
        heads: &[usize],
        rels: &[usize],
        tails: &[usize],
    ) -> tele_tensor::Var<'t> {
        let k = heads.len();
        let d = self.dim;
        let e = tape.param(store, self.entities);
        let r = tape.param(store, self.relations);
        let h = e.index_select0(heads);
        let t = e.index_select0(tails);
        let rel = r.index_select0(rels);
        match self.scorer {
            KgeScorer::TransE => h.add(rel).sub(t).abs().sum_axis(1).reshape([k]),
            KgeScorer::TransH => {
                // rel = [w ++ dvec]; project h, t off the (normalized) w.
                let w = rel.narrow(1, 0, d).normalize_last(1e-8);
                let dv = rel.narrow(1, d, d);
                let wh = w.mul(h).sum_axis(1); // (w·h) [k,1]
                let wt = w.mul(t).sum_axis(1);
                let hp = h.sub(w.mul(wh));
                let tp = t.sub(w.mul(wt));
                hp.add(dv).sub(tp).abs().sum_axis(1).reshape([k])
            }
            KgeScorer::DistMult => h.mul(rel).mul(t).sum_axis(1).reshape([k]).neg(),
            KgeScorer::Rotate => {
                // Split into real/imag halves; normalize r to unit modulus.
                let half = d / 2;
                let (ha, hb) = (h.narrow(1, 0, half), h.narrow(1, half, half));
                let (ta, tb) = (t.narrow(1, 0, half), t.narrow(1, half, half));
                let (ra, rb) = (rel.narrow(1, 0, half), rel.narrow(1, half, half));
                let modulus = ra.square().add(rb.square()).add_scalar(1e-8).sqrt();
                let (ru, iu) = (ra.div(modulus), rb.div(modulus));
                let rot_a = ha.mul(ru).sub(hb.mul(iu));
                let rot_b = ha.mul(iu).add(hb.mul(ru));
                let da = rot_a.sub(ta).abs().sum_axis(1);
                let db = rot_b.sub(tb).abs().sum_axis(1);
                da.add(db).reshape([k])
            }
        }
    }

    /// Raw (no-tape) distance for evaluation; must agree with `distance`.
    fn distance_raw(&self, store: &ParamStore, h: usize, r: usize, t: usize) -> f32 {
        let e = store.value(self.entities);
        let rel = store.value(self.relations);
        let d = self.dim;
        let (hr, rr, tr) = (e.row(h), rel.row(r), e.row(t));
        match self.scorer {
            KgeScorer::TransE => {
                hr.iter().zip(rr).zip(tr).map(|((&a, &b), &c)| (a + b - c).abs()).sum()
            }
            KgeScorer::TransH => {
                let w = &rr[..d];
                let dv = &rr[d..];
                let wn2: f32 = w.iter().map(|v| v * v).sum::<f32>().max(1e-16);
                let wh: f32 = w.iter().zip(hr).map(|(a, b)| a * b).sum::<f32>() / wn2;
                let wt: f32 = w.iter().zip(tr).map(|(a, b)| a * b).sum::<f32>() / wn2;
                (0..d)
                    .map(|i| {
                        let hp = hr[i] - wh * w[i];
                        let tp = tr[i] - wt * w[i];
                        (hp + dv[i] - tp).abs()
                    })
                    .sum()
            }
            KgeScorer::DistMult => {
                -hr.iter().zip(rr).zip(tr).map(|((&a, &b), &c)| a * b * c).sum::<f32>()
            }
            KgeScorer::Rotate => {
                let half = d / 2;
                (0..half)
                    .map(|i| {
                        let m = (rr[i] * rr[i] + rr[half + i] * rr[half + i] + 1e-8).sqrt();
                        let (ru, iu) = (rr[i] / m, rr[half + i] / m);
                        let ra = hr[i] * ru - hr[half + i] * iu;
                        let rb = hr[i] * iu + hr[half + i] * ru;
                        (ra - tr[i]).abs() + (rb - tr[half + i]).abs()
                    })
                    .sum()
            }
        }
    }
}

/// Per-split FCT results.
#[derive(Clone, Debug)]
pub struct FctResultMetrics {
    /// Test-set metrics (the Table VIII row).
    pub test: RankMetrics,
    /// Validation-set metrics (model selection).
    pub valid: RankMetrics,
}

/// Runs the FCT evaluation: train GTransE from the given initialization,
/// early-stop on validation MRR, report filtered test metrics.
pub fn run_fct(ds: &FctDataset, init: &EmbeddingTable, cfg: &FctTaskConfig) -> FctResultMetrics {
    let _span = tele_trace::span!("task.fct");
    let _dev = tele_tensor::device::scope(cfg.device);
    assert_eq!(init.len(), ds.num_nodes(), "one embedding per node required");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = ParamStore::new();
    let model = FctModel::new(&mut store, init, ds.num_relations(), cfg.scorer, &mut rng);
    let mut opt = AdamW::new(cfg.lr, 1e-5);

    // Filter set: all true facts across splits.
    let all_facts: std::collections::HashSet<(usize, usize, usize)> =
        ds.all_facts().map(|f| (f.head, f.rel, f.tail)).collect();

    let n = ds.num_nodes();
    let mut best_valid_mrr = f64::NEG_INFINITY;
    let mut best_snapshot = store.snapshot();
    for _ in 0..cfg.epochs {
        for fact in &ds.train {
            store.zero_grads();
            let tape = Tape::new();
            let loss = gtranse_loss(&tape, &store, &model, fact, &all_facts, n, cfg, &mut rng);
            tape.backward(loss).accumulate_into(&tape, &mut store);
            opt.step(&mut store);
        }
        let vm = evaluate(&store, &model, &ds.valid, &all_facts, n);
        if vm.mrr > best_valid_mrr {
            best_valid_mrr = vm.mrr;
            best_snapshot = store.snapshot();
        }
    }
    store.restore(&best_snapshot);
    FctResultMetrics {
        test: evaluate(&store, &model, &ds.test, &all_facts, n),
        valid: evaluate(&store, &model, &ds.valid, &all_facts, n),
    }
}

/// The confidence-weighted margin loss for one positive fact and its
/// sampled negatives (Eq. 24).
#[allow(clippy::too_many_arguments)]
fn gtranse_loss<'t>(
    tape: &'t Tape,
    store: &ParamStore,
    model: &FctModel,
    fact: &FctFact,
    all_facts: &std::collections::HashSet<(usize, usize, usize)>,
    num_entities: usize,
    cfg: &FctTaskConfig,
    rng: &mut StdRng,
) -> tele_tensor::Var<'t> {
    // Sample filtered negatives by corrupting head or tail.
    let mut negs = Vec::with_capacity(cfg.negatives);
    let mut guard = 0;
    while negs.len() < cfg.negatives && guard < cfg.negatives * 40 {
        guard += 1;
        let corrupt_head = rng.gen_bool(0.5);
        let repl = rng.gen_range(0..num_entities);
        let (h, t) = if corrupt_head { (repl, fact.tail) } else { (fact.head, repl) };
        if h == t || all_facts.contains(&(h, fact.rel, t)) {
            continue;
        }
        negs.push((h, t));
    }
    if negs.is_empty() {
        negs.push(((fact.head + 1) % num_entities, fact.tail));
    }

    let k = negs.len();
    let heads: Vec<usize> =
        std::iter::once(fact.head).chain(negs.iter().map(|&(h, _)| h)).collect();
    let tails: Vec<usize> =
        std::iter::once(fact.tail).chain(negs.iter().map(|&(_, t)| t)).collect();
    let rels = vec![fact.rel; k + 1];
    let dist = model.distance(tape, store, &heads, &rels, &tails); // [k+1]
    let d_pos = dist.narrow(0, 0, 1); // [1]
    let d_neg = dist.narrow(0, 1, k); // [k]
                                      // [d_pos − d_neg + s^α M]+ summed over negatives.
    let margin = fact.conf.powf(cfg.alpha) * cfg.margin;
    d_pos
        .sub(d_neg) // broadcast [1] - [k]
        .add_scalar(margin)
        .relu()
        .sum_all()
        .scale(1.0 / k as f32)
}

/// Filtered link prediction: for each fact, rank the true tail among all
/// entities for the `(h, r, ?)` query and the true head for `(?, r, t)`.
fn evaluate(
    store: &ParamStore,
    model: &FctModel,
    facts: &[FctFact],
    all_facts: &std::collections::HashSet<(usize, usize, usize)>,
    num_entities: usize,
) -> RankMetrics {
    assert!(!facts.is_empty(), "no facts to evaluate");
    let mut ranks = Vec::with_capacity(facts.len() * 2);
    for f in facts {
        // Tail query.
        let d_true = model.distance_raw(store, f.head, f.rel, f.tail);
        let mut rank = 1;
        for cand in 0..num_entities {
            if cand == f.tail || all_facts.contains(&(f.head, f.rel, cand)) {
                continue;
            }
            if model.distance_raw(store, f.head, f.rel, cand) <= d_true {
                rank += 1;
            }
        }
        ranks.push(rank);
        // Head query.
        let mut rank = 1;
        for cand in 0..num_entities {
            if cand == f.head || all_facts.contains(&(cand, f.rel, f.tail)) {
                continue;
            }
            if model.distance_raw(store, cand, f.rel, f.tail) <= d_true {
                rank += 1;
            }
        }
        ranks.push(rank);
    }
    RankMetrics::from_ranks(&ranks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embeddings::random_embeddings;
    use tele_datagen::logs::{simulate, LogSimConfig};
    use tele_datagen::{TeleWorld, WorldConfig};

    fn dataset() -> FctDataset {
        let w = TeleWorld::generate(WorldConfig {
            seed: 12,
            ne_types: 5,
            instances_per_type: 2,
            alarms: 16,
            kpis: 6,
            avg_out_degree: 1.8,
            expert_coverage: 0.7,
        });
        let eps = simulate(&w, &LogSimConfig { seed: 13, episodes: 80, ..Default::default() });
        FctDataset::build(&w, &eps, 14)
    }

    #[test]
    fn training_improves_over_untrained() {
        let ds = dataset();
        let init = random_embeddings(&ds.node_names, 16, 0).unwrap();
        // Untrained baseline: 0 epochs of training.
        let untrained = run_fct(&ds, &init, &FctTaskConfig { epochs: 0, ..Default::default() });
        let trained = run_fct(&ds, &init, &FctTaskConfig { epochs: 30, ..Default::default() });
        assert!(
            trained.test.mrr >= untrained.test.mrr,
            "training should not hurt: {} -> {}",
            untrained.test.mrr,
            trained.test.mrr
        );
        assert!(trained.test.mrr > 0.0);
    }

    #[test]
    fn ranks_are_filtered() {
        // With filtering, a fact's rank cannot exceed the entity count.
        let ds = dataset();
        let init = random_embeddings(&ds.node_names, 8, 1).unwrap();
        let res = run_fct(&ds, &init, &FctTaskConfig { epochs: 2, ..Default::default() });
        assert!(res.test.mr <= ds.num_nodes() as f64);
    }

    #[test]
    fn confidence_scales_margin() {
        // Internal check of the loss: higher confidence ⇒ larger margin ⇒
        // larger hinge for the same embedding state.
        let ds = dataset();
        let init = random_embeddings(&ds.node_names, 8, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let model =
            FctModel::new(&mut store, &init, ds.num_relations(), KgeScorer::TransE, &mut rng);
        let all: std::collections::HashSet<_> =
            ds.all_facts().map(|f| (f.head, f.rel, f.tail)).collect();
        let cfg = FctTaskConfig::default();
        let base = ds.train[0];
        let low = FctFact { conf: 0.1, ..base };
        let high = FctFact { conf: 1.0, ..base };
        let loss_of = |f: &FctFact| {
            let mut r = StdRng::seed_from_u64(42);
            let tape = Tape::new();
            gtranse_loss(&tape, &store, &model, f, &all, ds.num_nodes(), &cfg, &mut r)
                .value()
                .item()
        };
        assert!(loss_of(&high) >= loss_of(&low));
    }

    #[test]
    fn all_scorers_train_and_evaluate() {
        let ds = dataset();
        let init = random_embeddings(&ds.node_names, 16, 3).unwrap();
        for scorer in [KgeScorer::TransE, KgeScorer::TransH, KgeScorer::DistMult, KgeScorer::Rotate]
        {
            let cfg = FctTaskConfig { epochs: 3, scorer, ..Default::default() };
            let res = run_fct(&ds, &init, &cfg);
            assert!(res.test.mrr > 0.0, "{scorer:?} produced zero MRR");
            assert!(res.test.mr >= 1.0);
        }
    }

    #[test]
    fn tape_and_raw_distances_agree() {
        let ds = dataset();
        let init = random_embeddings(&ds.node_names, 16, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        for scorer in [KgeScorer::TransE, KgeScorer::TransH, KgeScorer::DistMult, KgeScorer::Rotate]
        {
            let mut store = ParamStore::new();
            let model = FctModel::new(&mut store, &init, ds.num_relations(), scorer, &mut rng);
            let f = ds.train[0];
            let tape = Tape::new();
            let tape_d =
                model.distance(&tape, &store, &[f.head], &[f.rel], &[f.tail]).value().item();
            let raw_d = model.distance_raw(&store, f.head, f.rel, f.tail);
            assert!(
                (tape_d - raw_d).abs() < 1e-3 * (1.0 + raw_d.abs()),
                "{scorer:?}: tape {tape_d} vs raw {raw_d}"
            );
        }
    }
}
