//! Embedding providers for the downstream tasks.
//!
//! Every task consumes a frozen embedding matrix (one row per event / node
//! name). The providers mirror the paper's comparison axis: random vectors,
//! averaged random word embeddings, and `[CLS]` service embeddings from a
//! pre-trained bundle.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ktelebert::{EncodeError, ServiceEncoder, ServiceFormat, TeleBert};
use tele_kg::TeleKg;
use tele_tensor::Tensor;
use tele_tokenizer::pre_tokenize;

/// A frozen embedding table: `rows × dim`.
#[derive(Clone, Debug)]
pub struct EmbeddingTable {
    /// Row vectors.
    pub rows: Vec<Vec<f32>>,
    /// Embedding dimensionality.
    pub dim: usize,
}

impl EmbeddingTable {
    /// Builds a table from raw rows: mean-centered, then L2-normalized.
    ///
    /// Centering removes the large shared component transformer `[CLS]`
    /// embeddings carry (anisotropy), which would otherwise drown the
    /// between-name signal; it is applied identically to every provider so
    /// the comparison stays fair (random rows are already near-centered).
    ///
    /// Empty input, ragged rows, and non-finite values surface as a typed
    /// [`EncodeError`] instead of a panic, so serving and task code can
    /// reject bad tables without taking the process down.
    pub fn try_normalized(rows: Vec<Vec<f32>>) -> Result<Self, EncodeError> {
        if rows.is_empty() {
            return Err(EncodeError::EmptyBatch);
        }
        let dim = rows[0].len();
        let n = rows.len() as f32;
        let mut mean = vec![0.0f32; dim];
        for (i, r) in rows.iter().enumerate() {
            if r.len() != dim {
                return Err(EncodeError::RaggedRows { row: i, expected: dim, found: r.len() });
            }
            if r.iter().any(|v| !v.is_finite()) {
                return Err(EncodeError::NonFinite { row: i });
            }
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let rows = rows
            .into_iter()
            .map(|r| {
                let centered: Vec<f32> = r.iter().zip(&mean).map(|(&v, &m)| v - m).collect();
                let norm = centered.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
                centered.into_iter().map(|v| v / norm).collect()
            })
            .collect();
        Ok(EmbeddingTable { rows, dim })
    }

    /// The table as a `[rows, dim]` tensor.
    pub fn tensor(&self) -> Tensor {
        let flat: Vec<f32> = self.rows.iter().flatten().copied().collect();
        Tensor::from_vec(flat, [self.rows.len(), self.dim])
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table is empty (never: constructors reject it).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Random uniform embeddings — the paper's "Random" baseline ("random
/// valued vectors drawn from a uniform distribution").
pub fn random_embeddings(
    names: &[String],
    dim: usize,
    seed: u64,
) -> Result<EmbeddingTable, EncodeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows =
        names.iter().map(|_| Tensor::rand_uniform([dim], -1.0, 1.0, &mut rng).to_vec()).collect();
    EmbeddingTable::try_normalized(rows)
}

/// Averaged random word embeddings — the paper's "Word Embeddings" baseline
/// for EAP: each distinct word gets a random vector; an event is the mean
/// of its words. Shared words induce similarity; nothing else does.
pub fn word_avg_embeddings(
    names: &[String],
    dim: usize,
    seed: u64,
) -> Result<EmbeddingTable, EncodeError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut word_vecs: std::collections::HashMap<String, Vec<f32>> =
        std::collections::HashMap::new();
    // Deterministic: assign vectors in first-appearance order.
    let rows = names
        .iter()
        .map(|name| {
            let words = pre_tokenize(name);
            let mut acc = vec![0.0f32; dim];
            let n = words.len().max(1) as f32;
            for w in &words {
                let v = word_vecs
                    .entry(w.to_lowercase())
                    .or_insert_with(|| Tensor::rand_uniform([dim], -1.0, 1.0, &mut rng).to_vec());
                for (a, b) in acc.iter_mut().zip(v.iter()) {
                    *a += b / n;
                }
            }
            acc
        })
        .collect();
    EmbeddingTable::try_normalized(rows)
}

/// `[CLS]` service embeddings from a pre-trained bundle (MacBERT stand-in,
/// TeleBERT, or any KTeleBERT variant), in the chosen delivery format.
pub fn service_embeddings(
    bundle: &TeleBert,
    kg: Option<&TeleKg>,
    names: &[String],
    format: ServiceFormat,
) -> Result<EmbeddingTable, EncodeError> {
    let svc = ServiceEncoder::new(bundle, kg);
    EmbeddingTable::try_normalized(svc.encode(names, format)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names() -> Vec<String> {
        vec![
            "control plane congested".into(),
            "control plane failed".into(),
            "garden party tomorrow".into(),
        ]
    }

    #[test]
    fn random_rows_are_unit_norm_and_distinct() {
        let t = random_embeddings(&names(), 16, 0).unwrap();
        assert_eq!(t.len(), 3);
        for r in &t.rows {
            let n: f32 = r.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
        assert_ne!(t.rows[0], t.rows[1]);
    }

    #[test]
    fn word_avg_reflects_shared_words() {
        let t = word_avg_embeddings(&names(), 32, 1).unwrap();
        let cos = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let related = cos(&t.rows[0], &t.rows[1]); // share "control plane"
        let unrelated = cos(&t.rows[0], &t.rows[2]);
        assert!(
            related > unrelated,
            "shared words should raise similarity: {related} vs {unrelated}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = random_embeddings(&names(), 8, 5).unwrap();
        let b = random_embeddings(&names(), 8, 5).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn try_normalized_rejects_bad_tables() {
        assert_eq!(EmbeddingTable::try_normalized(vec![]).unwrap_err(), EncodeError::EmptyBatch);
        let ragged = vec![vec![0.0; 4], vec![0.0; 3]];
        assert_eq!(
            EmbeddingTable::try_normalized(ragged).unwrap_err(),
            EncodeError::RaggedRows { row: 1, expected: 4, found: 3 }
        );
        let poisoned = vec![vec![1.0, 2.0], vec![f32::NAN, 0.0]];
        assert_eq!(
            EmbeddingTable::try_normalized(poisoned).unwrap_err(),
            EncodeError::NonFinite { row: 1 }
        );
    }

    #[test]
    fn tensor_shape() {
        let t = random_embeddings(&names(), 8, 5).unwrap();
        assert_eq!(t.tensor().shape().dims(), &[3, 8]);
    }
}
