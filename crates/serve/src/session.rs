//! In-process inference sessions: one shared immutable model, one batcher
//! thread coalescing concurrent encode requests into padded micro-batches.
//!
//! ## Batching policy
//!
//! Requests enter a FIFO queue. The batcher opens a micro-batch at the first
//! queued request and closes it when either `max_batch` requests are queued
//! or `max_wait_us` has elapsed since the batch opened — whichever comes
//! first — then runs **one** padded forward pass for the whole batch. The
//! deadline bounds tail latency under light load; the size cap bounds peak
//! memory under heavy load.
//!
//! ## Admission control and degradation
//!
//! The queue is bounded by [`SessionConfig::queue_capacity`]: a submission
//! that would push the depth past capacity is shed **at enqueue** with a
//! typed [`ServeError::Overloaded`] — all-or-nothing per request group, and
//! never mid-batch, so a caller either gets every embedding or a single
//! typed refusal. Requests may carry a deadline
//! ([`SessionConfig::default_deadline_us`] or per-request); the batcher
//! expires queued work past its deadline with
//! [`ServeError::DeadlineExceeded`] instead of forwarding dead requests, and
//! expired items do not consume batch slots. As depth rises toward capacity
//! the batcher also shrinks its straggler wait ([`effective_wait_us`]), so a
//! loaded server stops trading latency for batch fullness exactly when
//! batches fill on their own.
//!
//! ## Hot rollover
//!
//! The serving bundle lives behind a versioned model slot.
//! [`InferenceSession::install`] atomically swaps in a new bundle (version +1)
//! while any in-flight micro-batch finishes on the `Arc` it already drained;
//! the batcher rebuilds its LRU cache whenever the version changes, so a
//! cache hit can never cross a model swap.
//!
//! ## Why coalescing is sound
//!
//! The encode path is bit-deterministic under padding (see
//! [`ktelebert::TeleBert::encode_batch`]): a sentence encoded inside any
//! micro-batch yields exactly the `f32` bits it would yield encoded alone.
//! Requests may therefore be grouped arbitrarily — across callers, threads,
//! and connections — without observable effect on results, and cached
//! embeddings are interchangeable with freshly computed ones.
//!
//! ## Telemetry
//!
//! Every request carries an id (caller-supplied or assigned from the
//! session's counter) from enqueue to delivery. With
//! [`TelemetryConfig::tracing`] on, each phase of a request's life is timed
//! into sliding-window histograms (queue wait, batch assembly, forward) and
//! annotated into a bounded [`FlightRecorder`]; typed errors dump the ring
//! to `flight_<ts>.json` when a flight directory is configured.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ktelebert::{EncodeError, TeleBert};
use tele_trace::now_ns;
use tele_trace::recorder::FlightRecorder;

use crate::cache::{normalize_key, LruCache};
use crate::error::ServeError;
use crate::faults::ServeFault;
use crate::metrics::{MetricsSnapshot, ServeMetrics, ServeStats, TelemetryConfig};

/// Tuning knobs for an [`InferenceSession`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Largest micro-batch the batcher will form.
    pub max_batch: usize,
    /// Longest the batcher waits (µs) after opening a batch for more
    /// requests to join before running it.
    pub max_wait_us: u64,
    /// Embedding cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Request-queue capacity; submissions past it are shed with a typed
    /// [`ServeError::Overloaded`]. 0 disables admission control (unbounded).
    pub queue_capacity: usize,
    /// Default queueing deadline (µs) applied to requests that carry none;
    /// 0 means no default deadline.
    pub default_deadline_us: u64,
    /// Injected fault for chaos tests; [`ServeFault::None`] in production.
    pub fault: ServeFault,
    /// Telemetry plane configuration (windows, tracing, flight recorder).
    pub telemetry: TelemetryConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_batch: 16,
            max_wait_us: 1_000,
            cache_capacity: 1_024,
            queue_capacity: 1_024,
            default_deadline_us: 0,
            fault: ServeFault::None,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// The batcher's straggler wait under load: the configured `max_wait_us`
/// scaled down linearly by queue depth. A full batch already queued needs no
/// wait at all; a queue at capacity gets none either — trading batch
/// fullness for latency is only worthwhile while the server is keeping up.
pub fn effective_wait_us(max_wait_us: u64, depth: u64, capacity: u64, max_batch: u64) -> u64 {
    if depth >= max_batch.max(1) {
        return 0;
    }
    if capacity == 0 {
        return max_wait_us;
    }
    let free = capacity.saturating_sub(depth.min(capacity));
    max_wait_us.saturating_mul(free) / capacity
}

/// One waiter's completion slot: filled exactly once by the batcher.
struct Slot {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn deliver(&self, r: Result<Vec<f32>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Vec<f32>, ServeError> {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued request.
struct Pending {
    id: u64,
    text: String,
    key: String,
    enqueued_ns: u64,
    /// Absolute expiry timestamp; `None` when the request has no deadline.
    deadline_ns: Option<u64>,
    slot: Arc<Slot>,
}

struct Queue {
    items: VecDeque<Pending>,
    closed: bool,
}

/// The serving bundle behind a version tag: [`InferenceSession::install`]
/// swaps the `Arc` and bumps the version, and the batcher flushes its cache
/// whenever the version it last built against has moved on.
struct ModelSlot {
    version: u64,
    bundle: Arc<TeleBert>,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    /// Requests accepted and not yet answered.
    in_flight: AtomicU64,
    model: Mutex<ModelSlot>,
}

/// Telemetry state shared between the session handle and the batcher:
/// metrics sink, flight-recorder ring, and the plane's configuration.
struct Telemetry {
    cfg: TelemetryConfig,
    metrics: Mutex<ServeMetrics>,
    recorder: Mutex<FlightRecorder>,
}

impl Telemetry {
    fn new(cfg: TelemetryConfig) -> Telemetry {
        let metrics = Mutex::new(ServeMetrics::new(&cfg));
        let recorder = Mutex::new(FlightRecorder::new(cfg.flight_capacity));
        Telemetry { cfg, metrics, recorder }
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Per-request annotation, elided when tracing is off.
    fn note(&self, kind: &'static str, id: Option<u64>, detail: impl Into<String>) {
        if !self.cfg.tracing {
            return;
        }
        self.recorder.lock().unwrap_or_else(|e| e.into_inner()).note(kind, id, detail);
    }

    /// Error annotation plus flight dump (when a dump dir is configured).
    /// Errors are always noted, even with per-request tracing off.
    fn error(&self, kind: &'static str, id: Option<u64>, detail: impl Into<String>) {
        self.recorder.lock().unwrap_or_else(|e| e.into_inner()).note(kind, id, detail);
        if let Some(dir) = &self.cfg.flight_dir {
            // Render under the lock (in-memory), write after releasing it:
            // the recorder must stay available to every noting thread while
            // the dump hits the filesystem.
            let json = self.recorder.lock().unwrap_or_else(|e| e.into_inner()).to_json();
            match tele_trace::recorder::dump_json_to_dir(dir, &json) {
                Ok(_) => self.metrics().flight_dumps += 1,
                Err(e) => eprintln!("serve: flight dump to {} failed: {e}", dir.display()),
            }
        }
    }
}

/// A thread-safe handle to one loaded model with a batching encode path.
///
/// The model is loaded once and shared immutably (`Arc`); any number of
/// threads may call [`encode`](Self::encode) concurrently. Requests are
/// coalesced into micro-batches by a dedicated batcher thread and answered
/// through a bounded LRU cache keyed by whitespace-normalized text.
pub struct InferenceSession {
    shared: Arc<Shared>,
    telemetry: Arc<Telemetry>,
    next_id: AtomicU64,
    queue_capacity: usize,
    default_deadline_us: u64,
    engine: Option<JoinHandle<()>>,
}

/// A pending single-sentence encode started by
/// [`InferenceSession::encode_async`]: the request is already queued (or was
/// shed at submission); `wait` blocks for its micro-batch to complete.
pub struct EncodeTicket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for EncodeTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncodeTicket").finish_non_exhaustive()
    }
}

impl EncodeTicket {
    /// Blocks until the batcher delivers this request's result.
    pub fn wait(self) -> Result<Vec<f32>, ServeError> {
        self.slot.wait()
    }
}

impl InferenceSession {
    /// Starts a session owning `bundle`.
    pub fn new(bundle: TeleBert, cfg: SessionConfig) -> Self {
        Self::from_arc(Arc::new(bundle), cfg)
    }

    /// Starts a session over an already-shared bundle.
    pub fn from_arc(bundle: Arc<TeleBert>, cfg: SessionConfig) -> Self {
        // Pre-size the queue to its admission bound (clamped: capacity 0
        // means unbounded, and huge bounds should not pre-allocate).
        let prealloc = cfg.queue_capacity.clamp(16, 4_096);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { items: VecDeque::with_capacity(prealloc), closed: false }),
            wake: Condvar::new(),
            in_flight: AtomicU64::new(0),
            model: Mutex::new(ModelSlot { version: 1, bundle }),
        });
        let telemetry = Arc::new(Telemetry::new(cfg.telemetry.clone()));
        let queue_capacity = cfg.queue_capacity;
        let default_deadline_us = cfg.default_deadline_us;
        let engine = {
            let shared = Arc::clone(&shared);
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || run_batcher(&shared, &telemetry, &cfg))
        };
        InferenceSession {
            shared,
            telemetry,
            next_id: AtomicU64::new(1),
            queue_capacity,
            default_deadline_us,
            engine: Some(engine),
        }
    }

    /// The model bundle currently serving (a snapshot: a concurrent
    /// [`install`](Self::install) may supersede it at any time).
    pub fn bundle(&self) -> Arc<TeleBert> {
        let slot = self.shared.model.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&slot.bundle)
    }

    /// Version of the bundle currently serving (starts at 1).
    pub fn model_version(&self) -> u64 {
        self.shared.model.lock().unwrap_or_else(|e| e.into_inner()).version
    }

    /// Atomically swaps in a new serving bundle and returns its version.
    ///
    /// In-flight micro-batches finish on the bundle they drained against;
    /// every batch drained after this call runs on the new bundle, and the
    /// batcher flushes its version-keyed cache before the first one.
    pub fn install(&self, bundle: TeleBert) -> u64 {
        let version = {
            let mut slot = self.shared.model.lock().unwrap_or_else(|e| e.into_inner());
            slot.bundle = Arc::new(bundle);
            slot.version += 1;
            slot.version
        };
        self.telemetry.metrics().rollovers += 1;
        self.telemetry.note("serve.rollover", None, format!("version={version}"));
        self.shared.wake.notify_all();
        version
    }

    /// Draws the next request id from the session's counter.
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Encodes one sentence, blocking until its micro-batch completes.
    pub fn encode(&self, text: &str) -> Result<Vec<f32>, ServeError> {
        let id = self.next_request_id();
        self.encode_async(text, id, None)?.wait()
    }

    /// Encodes a group of sentences. All of them are enqueued in one burst —
    /// so the batcher can coalesce them into full micro-batches — and the
    /// call blocks until every one completes.
    pub fn encode_many(&self, texts: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        let id = self.next_request_id();
        self.encode_many_with_id(texts, id)
    }

    /// [`encode_many`](Self::encode_many) under a caller-chosen request id
    /// (the TCP server threads its wire-level id through here, so flight
    /// notes and the reply all carry the same id).
    pub fn encode_many_with_id(
        &self,
        texts: &[String],
        id: u64,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        self.encode_many_with_deadline(texts, id, None)
    }

    /// [`encode_many_with_id`](Self::encode_many_with_id) with an explicit
    /// queueing deadline (µs); `None` falls back to the configured default.
    pub fn encode_many_with_deadline(
        &self,
        texts: &[String],
        id: u64,
        deadline_us: Option<u64>,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        if texts.is_empty() {
            self.telemetry.error("serve.error", Some(id), "empty_batch rejected at submit");
            return Err(ServeError::Encode(EncodeError::EmptyBatch));
        }
        self.telemetry.note("req.enqueue", Some(id), format!("texts={}", texts.len()));
        let slots = self.submit_all(texts, id, deadline_us)?;
        slots.into_iter().map(|s| s.wait()).collect()
    }

    /// Submits one sentence without blocking for its result. The returned
    /// [`EncodeTicket`] can be waited on later; admission control still
    /// applies at submission, so an overloaded queue sheds instantly instead
    /// of parking the caller. This is the open-loop load-generation
    /// primitive: a dispatcher can hold its arrival schedule regardless of
    /// how slowly the server drains.
    pub fn encode_async(
        &self,
        text: &str,
        id: u64,
        deadline_us: Option<u64>,
    ) -> Result<EncodeTicket, ServeError> {
        let mut slots = self.submit_all(std::slice::from_ref(&text), id, deadline_us)?;
        match slots.pop() {
            Some(slot) => Ok(EncodeTicket { slot }),
            // submit_all returns exactly one slot per input text.
            None => Err(ServeError::Internal("submit_all returned no slot".into())),
        }
    }

    /// All-or-nothing bounded submission: either every text is enqueued
    /// under one lock hold, or nothing is and the whole group is shed with a
    /// typed [`ServeError::Overloaded`]. Shedding happens strictly at
    /// enqueue — never once work has entered the queue.
    fn submit_all<S: AsRef<str>>(
        &self,
        texts: &[S],
        id: u64,
        deadline_us: Option<u64>,
    ) -> Result<Vec<Arc<Slot>>, ServeError> {
        let deadline_us = deadline_us
            .or_else(|| (self.default_deadline_us > 0).then_some(self.default_deadline_us));
        let now = now_ns();
        let deadline_ns = deadline_us.map(|d| now.saturating_add(d.saturating_mul(1_000)));
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            return Err(ServeError::SessionClosed);
        }
        let capacity = self.queue_capacity;
        if capacity > 0 && q.items.len() + texts.len() > capacity {
            let depth = q.items.len() as u64;
            drop(q);
            self.telemetry.metrics().shed += texts.len() as u64;
            // A shed is expected degradation, not a failure: note it for the
            // flight ring without dumping.
            self.telemetry.note(
                "serve.shed",
                Some(id),
                format!("depth={depth} capacity={capacity} rows={}", texts.len()),
            );
            return Err(ServeError::Overloaded { depth, capacity: capacity as u64 });
        }
        let mut slots = Vec::with_capacity(texts.len());
        for text in texts {
            let text = text.as_ref();
            let slot = Slot::new();
            q.items.push_back(Pending {
                id,
                text: text.to_string(),
                key: normalize_key(text),
                enqueued_ns: now,
                deadline_ns,
                slot: Arc::clone(&slot),
            });
            slots.push(slot);
        }
        drop(q);
        self.shared.in_flight.fetch_add(texts.len() as u64, Ordering::Relaxed);
        self.shared.wake.notify_all();
        Ok(slots)
    }

    /// Requests queued but not yet drained into a micro-batch.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len() as u64
    }

    /// Requests accepted and not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Current serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.telemetry.metrics().stats()
    }

    /// Live snapshot for the `metrics` wire op: gauges plus full stats.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let now = now_ns();
        let m = self.telemetry.metrics();
        MetricsSnapshot {
            now_ns: now,
            window_secs: self.telemetry.cfg.window_secs,
            rps_window: m.rps_window(now),
            queue_depth: self.queue_depth(),
            in_flight: self.in_flight(),
            model_version: self.model_version(),
            stats: m.stats_at(now),
        }
    }

    /// Prometheus text exposition of the session's metrics.
    pub fn prometheus_text(&self) -> String {
        let now = now_ns();
        let snap = self.telemetry.metrics().registry_snapshot(
            now,
            self.queue_depth(),
            self.in_flight(),
            self.model_version(),
        );
        tele_trace::export::prometheus_text(&snap)
    }

    /// Records the time spent serializing and writing one reply, µs
    /// (called by the TCP server after the socket write completes).
    pub fn record_write_us(&self, us: u64) {
        let now = now_ns();
        self.telemetry.metrics().record_write_us(now, us);
    }

    /// Annotates a server-side error into the flight ring and dumps the
    /// ring when a flight directory is configured.
    pub fn record_error(&self, code: &str, id: Option<u64>, detail: &str) {
        self.telemetry.error("serve.error", id, format!("code={code} {detail}"));
    }

    /// Appends a flight note (no-op with tracing off).
    pub fn flight_note(&self, kind: &'static str, id: Option<u64>, detail: String) {
        self.telemetry.note(kind, id, detail);
    }

    /// Counts `rows` shed requests rejected before enqueue (used by the TCP
    /// accept loop when the connection queue itself is full; session-level
    /// sheds are counted inside `submit_all`).
    pub fn record_shed(&self, rows: u64, id: Option<u64>, detail: &str) {
        self.telemetry.metrics().shed += rows;
        self.telemetry.note("serve.shed", id, detail.to_string());
    }

    /// Publishes the session's metrics into the calling thread's trace
    /// registry (see [`ServeMetrics::publish`]).
    pub fn publish_metrics(&self) {
        self.telemetry.metrics().publish();
    }

    /// Shuts the session down: already-queued requests still complete, new
    /// submissions fail with [`ServeError::SessionClosed`]. Returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.closed = true;
        }
        self.shared.wake.notify_all();
        if let Some(engine) = self.engine.take() {
            // A panicked batcher already delivered nothing more; there is no
            // recovery beyond surfacing SessionClosed to future callers.
            let _ = engine.join();
        }
    }
}

impl Drop for InferenceSession {
    fn drop(&mut self) {
        self.close();
    }
}

/// The batcher loop: drain → expire → coalesce → one forward → deliver.
fn run_batcher(shared: &Shared, tel: &Telemetry, cfg: &SessionConfig) {
    let max_batch = cfg.max_batch.max(1);
    let mut cache = LruCache::new(cfg.cache_capacity);
    // Version the live cache was built against; rebuilt on every rollover so
    // a stale hit across a model swap is structurally impossible.
    let mut cache_version = 1u64;
    let mut batch_seq = 0u64;
    loop {
        let (batch, expired) = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Sleep until there is work or the session closes.
            while q.items.is_empty() && !q.closed {
                q = shared.wake.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.items.is_empty() {
                return; // closed and drained
            }
            // Batch opens now; hold it open briefly for stragglers, unless
            // it is already full or the session is draining for shutdown.
            // The straggler budget shrinks as depth approaches capacity.
            let wait_us = effective_wait_us(
                cfg.max_wait_us,
                q.items.len() as u64,
                cfg.queue_capacity as u64,
                max_batch as u64,
            );
            let deadline = now_ns().saturating_add(wait_us.saturating_mul(1_000));
            while q.items.len() < max_batch && !q.closed {
                let now = now_ns();
                if now >= deadline {
                    break;
                }
                let wait = Duration::from_nanos(deadline - now);
                let (guard, _timeout) =
                    shared.wake.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            // Drain up to max_batch live requests; requests already past
            // their deadline are set aside (they cost no batch slots) and
            // expired below instead of being forwarded dead.
            let now = now_ns();
            let mut live: Vec<Pending> = Vec::with_capacity(max_batch);
            let mut expired: Vec<Pending> = Vec::new();
            while live.len() < max_batch {
                let past_deadline = match q.items.front() {
                    Some(p) => p.deadline_ns.is_some_and(|d| now >= d),
                    None => break,
                };
                let Some(p) = q.items.pop_front() else { break };
                if past_deadline {
                    expired.push(p);
                } else {
                    live.push(p);
                }
            }
            (live, expired)
        };
        let drained = (batch.len() + expired.len()) as u64;
        for p in &expired {
            let now = now_ns();
            let waited_us = now.saturating_sub(p.enqueued_ns) / 1_000;
            let deadline_us =
                p.deadline_ns.map(|d| d.saturating_sub(p.enqueued_ns) / 1_000).unwrap_or_default();
            let mut m = tel.metrics();
            m.deadline_expired += 1;
            m.record_request(now, now.saturating_sub(p.enqueued_ns), false);
            drop(m);
            tel.note(
                "serve.deadline_expired",
                Some(p.id),
                format!("waited_us={waited_us} deadline_us={deadline_us}"),
            );
            p.slot.deliver(Err(ServeError::DeadlineExceeded { waited_us, deadline_us }));
        }
        if !batch.is_empty() {
            // Snapshot the serving bundle for this batch: an install() racing
            // us swaps the slot, but this batch finishes on the Arc it took.
            let (version, bundle) = {
                let slot = shared.model.lock().unwrap_or_else(|e| e.into_inner());
                (slot.version, Arc::clone(&slot.bundle))
            };
            if version != cache_version {
                cache = LruCache::new(cfg.cache_capacity);
                cache_version = version;
                tel.note("serve.cache_flush", None, format!("version={version}"));
            }
            batch_seq += 1;
            cfg.fault.on_batch_start(batch_seq);
            run_one_batch(&bundle, &mut cache, tel, batch, &cfg.fault, batch_seq);
        }
        shared.in_flight.fetch_sub(drained, Ordering::Relaxed);
    }
}

/// Formats the distinct request ids in a batch for a flight note (batches
/// are small — `max_batch` entries at most).
fn id_list(batch: &[Pending]) -> String {
    let mut ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
    ids.dedup();
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "worker panic".to_string()
}

/// Fails every request of a micro-batch with the same typed error: records
/// the batch and per-request metrics, notes + dumps the flight ring, and
/// delivers `make_err()` to each waiting slot.
fn fail_batch(
    tel: &Telemetry,
    batch: &[Pending],
    t0: u64,
    counts: (u64, u64, u64),
    make_err: &dyn Fn() -> ServeError,
) {
    let (hits, misses, unique) = counts;
    let failed = now_ns();
    let n = batch.len() as u64;
    let elapsed = failed.saturating_sub(t0);
    let mut m = tel.metrics();
    m.record_batch(failed, n, hits, misses, unique, elapsed);
    for p in batch {
        m.record_request(failed, failed.saturating_sub(p.enqueued_ns), false);
    }
    drop(m);
    let code = crate::protocol::error_code(&make_err());
    tel.error(
        "serve.error",
        batch.first().map(|p| p.id),
        format!("code={code} rows={n} ids=[{}]", id_list(batch)),
    );
    for p in batch {
        p.slot.deliver(Err(make_err()));
    }
}

/// Executes one micro-batch: cache lookups, in-batch dedup, a single padded
/// forward over the misses (under `catch_unwind`, so a panicking model or
/// injected fault fails the batch instead of killing the batcher), then
/// per-request delivery and metrics.
fn run_one_batch(
    bundle: &TeleBert,
    cache: &mut LruCache,
    tel: &Telemetry,
    batch: Vec<Pending>,
    fault: &ServeFault,
    seq: u64,
) {
    let t0 = now_ns();
    let tracing = tel.cfg.tracing;
    let n = batch.len();
    let mut results: Vec<Option<Vec<f32>>> = Vec::with_capacity(n);
    let mut miss_index: HashMap<&str, usize> = HashMap::new();
    let mut miss_keys: Vec<&str> = Vec::new();
    let mut miss_texts: Vec<String> = Vec::new();
    let mut hits = 0u64;
    for p in &batch {
        match cache.get(&p.key) {
            Some(v) => {
                hits += 1;
                results.push(Some(v.to_vec()));
            }
            None => {
                if !miss_index.contains_key(p.key.as_str()) {
                    miss_index.insert(p.key.as_str(), miss_texts.len());
                    miss_keys.push(p.key.as_str());
                    miss_texts.push(p.text.clone());
                }
                results.push(None);
            }
        }
    }

    let misses = n as u64 - hits;
    let unique = miss_texts.len() as u64;
    let assembled = now_ns();
    let fresh = if miss_texts.is_empty() {
        Vec::new()
    } else {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fault.in_forward(seq);
            bundle.encode_batch(&miss_texts)
        }));
        match outcome {
            Ok(Ok(embs)) => embs,
            Ok(Err(e)) => {
                // The whole forward failed: every request in the batch gets
                // the same typed error.
                fail_batch(tel, &batch, t0, (hits, misses, unique), &|| {
                    ServeError::Encode(e.clone())
                });
                return;
            }
            Err(payload) => {
                // The forward panicked: contain it, fail the batch with a
                // typed internal error, and keep the batcher alive for the
                // next batch.
                let msg = panic_message(payload.as_ref());
                fail_batch(tel, &batch, t0, (hits, misses, unique), &|| {
                    ServeError::Internal(msg.clone())
                });
                return;
            }
        }
    };
    let forwarded = now_ns();
    // Fill the cache in batch arrival order, not HashMap order: the LRU's
    // eviction sequence (and thus which keys survive a full cache) must not
    // vary between runs of the same request stream.
    for (idx, key) in miss_keys.iter().enumerate() {
        cache.insert((*key).to_string(), fresh[idx].clone());
    }

    let done = now_ns();
    let elapsed = done.saturating_sub(t0);
    let mut m = tel.metrics();
    m.record_batch(done, n as u64, hits, misses, unique, elapsed);
    for p in &batch {
        m.record_request(done, done.saturating_sub(p.enqueued_ns), true);
    }
    if tracing {
        for p in &batch {
            m.record_queue_us(done, t0.saturating_sub(p.enqueued_ns) / 1_000);
        }
        m.record_assemble_us(done, assembled.saturating_sub(t0) / 1_000);
        if unique > 0 {
            m.record_forward_us(done, forwarded.saturating_sub(assembled) / 1_000);
        }
    }
    drop(m);
    tel.note(
        "batch.exec",
        None,
        format!("rows={n} unique={unique} hits={hits} ids=[{}]", id_list(&batch)),
    );
    for (p, r) in batch.iter().zip(results.iter_mut()) {
        let emb = match r.take() {
            Some(v) => v,
            // A miss resolved by this batch's forward (dedup'd rows share
            // one embedding).
            None => miss_index.get(p.key.as_str()).map(|&i| fresh[i].clone()).unwrap_or_default(),
        };
        p.slot.deliver(Ok(emb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    #[test]
    fn single_request_roundtrip() {
        let session = InferenceSession::new(tiny_bundle(0), SessionConfig::default());
        let emb = session.encode("control plane congested").expect("encode");
        assert_eq!(emb.len(), 16);
        assert!(emb.iter().all(|v| v.is_finite()));
        let stats = session.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn session_results_match_direct_encode_bitwise() {
        let bundle = Arc::new(tiny_bundle(1));
        let session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        let texts = vec!["alarm raised on amf".to_string(), "link down on smf node".to_string()];
        let via_session = session.encode_many(&texts).expect("encode_many");
        for (text, got) in texts.iter().zip(&via_session) {
            let solo = bundle.encode_batch(std::slice::from_ref(text)).expect("solo");
            let a: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = solo[0].iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "batched result must be bit-identical to solo encode");
        }
    }

    #[test]
    fn repeated_text_is_served_from_cache() {
        let session = InferenceSession::new(tiny_bundle(2), SessionConfig::default());
        let a = session.encode("network congestion points increased").expect("first");
        let b = session.encode("network   congestion points\tincreased").expect("second");
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(stats.cache_hits >= 1, "whitespace-variant repeat must hit the cache: {stats:?}");
        assert_eq!(stats.encoded_sentences, 1, "only one unique forward row");
    }

    #[test]
    fn encode_many_coalesces_into_fewer_batches() {
        let cfg = SessionConfig {
            max_batch: 8,
            max_wait_us: 20_000,
            cache_capacity: 0,
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(3), cfg);
        let texts: Vec<String> = (0..8).map(|i| format!("event number {i} on node")).collect();
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(out.len(), 8);
        let stats = session.shutdown();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches < 8,
            "burst submission must coalesce (got {} batches)",
            stats.batches
        );
    }

    #[test]
    fn empty_request_is_a_typed_error() {
        let session = InferenceSession::new(tiny_bundle(4), SessionConfig::default());
        match session.encode_many(&[]) {
            Err(ServeError::Encode(EncodeError::EmptyBatch)) => {}
            other => panic!("expected EmptyBatch, got {other:?}"),
        }
    }

    #[test]
    fn closed_session_rejects_new_requests() {
        let bundle = Arc::new(tiny_bundle(5));
        let mut session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        session.close();
        match session.encode("anything") {
            Err(ServeError::SessionClosed) => {}
            other => panic!("expected SessionClosed, got {other:?}"),
        }
    }

    #[test]
    fn in_batch_duplicates_share_one_forward_row() {
        let cfg = SessionConfig {
            max_batch: 8,
            max_wait_us: 20_000,
            cache_capacity: 16,
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(6), cfg);
        let texts: Vec<String> = vec![
            "same fault text".into(),
            "same fault text".into(),
            "same  fault   text".into(),
            "a different fault".into(),
        ];
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(
            out[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out[2].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(
            stats.encoded_sentences <= 2 * stats.batches,
            "dedup must collapse duplicate rows: {stats:?}"
        );
    }

    #[test]
    fn phase_histograms_fill_under_tracing() {
        let session = InferenceSession::new(tiny_bundle(7), SessionConfig::default());
        let texts: Vec<String> = (0..4).map(|i| format!("phase sample {i}")).collect();
        session.encode_many(&texts).expect("encode_many");
        let stats = session.shutdown();
        assert_eq!(stats.phases.queue_us.count, 4, "{:?}", stats.phases);
        assert!(stats.phases.assemble_us.count >= 1);
        assert!(stats.phases.forward_us.count >= 1);
        assert_eq!(stats.latency_window.queue_us.count, 4);
        assert!(stats.latency_window.request_latency.count >= 4);
    }

    #[test]
    fn tracing_off_skips_phases_but_keeps_cumulative() {
        let cfg = SessionConfig {
            telemetry: TelemetryConfig { tracing: false, ..Default::default() },
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(8), cfg);
        session.encode("a quiet request").expect("encode");
        let stats = session.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.phases.queue_us.count, 0);
        assert_eq!(stats.request_latency.count, 1);
    }

    #[test]
    fn metrics_snapshot_reports_gauges_and_window() {
        let session = InferenceSession::new(tiny_bundle(9), SessionConfig::default());
        session.encode("snapshot me").expect("encode");
        // The batcher decrements in-flight just after delivering the result,
        // so give the gauge a moment to settle before snapshotting.
        for _ in 0..200 {
            if session.in_flight() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = session.metrics_snapshot();
        assert_eq!(snap.stats.requests, 1);
        assert_eq!(snap.in_flight, 0);
        assert!(snap.rps_window > 0.0);
        assert!(snap.window_secs > 0);
        let prom = session.prometheus_text();
        assert!(prom.contains("serve_requests 1"), "{prom}");
    }

    /// Spins until the batcher has drained the queue (the request may still
    /// be executing).
    fn wait_for_drain(session: &InferenceSession) {
        for _ in 0..500 {
            if session.queue_depth() == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("queue never drained");
    }

    #[test]
    fn effective_wait_shrinks_with_queue_depth() {
        // Full batch already queued: no straggler wait at all.
        assert_eq!(effective_wait_us(1_000, 16, 64, 16), 0);
        // Empty queue at large capacity: the full configured wait.
        assert_eq!(effective_wait_us(1_000, 0, 64, 16), 1_000);
        // Half-full queue: half the wait.
        assert_eq!(effective_wait_us(1_000, 8, 64, 16), 875);
        assert_eq!(effective_wait_us(1_000, 15, 16, 16), 62);
        // Unbounded queue (capacity 0): depth only matters via max_batch.
        assert_eq!(effective_wait_us(1_000, 8, 0, 16), 1_000);
        // Depth at/past capacity saturates to zero, no underflow.
        assert_eq!(effective_wait_us(1_000, 99, 8, 100), 0);
    }

    #[test]
    fn overload_sheds_with_typed_error_and_counts() {
        let cfg = SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            queue_capacity: 2,
            fault: ServeFault::SlowBatch(200),
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(11), cfg);
        // First request occupies the batcher (a 200 ms slow batch)...
        let busy = session.encode_async("occupy the batcher", 1, None).expect("submit");
        wait_for_drain(&session);
        // ...so these two fill the queue to capacity...
        let q1 = session.encode_async("queued one", 2, None).expect("submit");
        let q2 = session.encode_async("queued two", 3, None).expect("submit");
        // ...and the next submission must shed, typed, without blocking.
        match session.encode_async("one too many", 4, None) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (2, 2));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // A multi-text group past capacity is all-or-nothing: nothing of it
        // is enqueued.
        let group: Vec<String> = (0..3).map(|i| format!("group item {i}")).collect();
        match session.encode_many_with_id(&group, 5) {
            Err(ServeError::Overloaded { .. }) => {}
            other => panic!("expected Overloaded for the group, got {other:?}"),
        }
        assert!(session.queue_depth() <= 2, "shed groups must not partially enqueue");
        // Queued work still completes; shed work never entered the queue.
        busy.wait().expect("busy request completes");
        q1.wait().expect("queued one completes");
        q2.wait().expect("queued two completes");
        let stats = session.shutdown();
        assert_eq!(stats.shed, 1 + 3, "one single + one group of three: {stats:?}");
        assert_eq!(stats.requests, 3, "shed requests are not counted as completed");
    }

    #[test]
    fn queued_requests_expire_past_their_deadline() {
        let cfg = SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            fault: ServeFault::SlowBatch(150),
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(12), cfg);
        let busy = session.encode_async("occupy the batcher", 1, None).expect("submit");
        wait_for_drain(&session);
        // 1 ms deadline, but the batcher is busy for 150 ms: the request
        // must expire at drain time, not run against the model.
        let doomed = session.encode_async("will expire", 2, Some(1_000)).expect("submit");
        busy.wait().expect("busy request completes");
        match doomed.wait() {
            Err(ServeError::DeadlineExceeded { waited_us, deadline_us }) => {
                assert_eq!(deadline_us, 1_000);
                assert!(waited_us >= 1_000, "waited {waited_us} us");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = session.shutdown();
        assert_eq!(stats.deadline_expired, 1, "{stats:?}");
        assert_eq!(stats.errors, 1, "expiry counts as a failed request");
        assert_eq!(stats.encoded_sentences, 1, "the expired text must never reach the model");
    }

    #[test]
    fn default_deadline_applies_when_request_carries_none() {
        let cfg = SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            default_deadline_us: 1_000,
            fault: ServeFault::SlowBatch(150),
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(13), cfg);
        let busy = session.encode_async("occupy the batcher", 1, Some(10_000_000)).expect("submit");
        wait_for_drain(&session);
        let doomed = session.encode_async("inherits the default", 2, None).expect("submit");
        busy.wait().expect("busy request completes");
        match doomed.wait() {
            Err(ServeError::DeadlineExceeded { deadline_us, .. }) => {
                assert_eq!(deadline_us, 1_000, "default deadline must apply");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        session.shutdown();
    }

    #[test]
    fn worker_panic_is_contained_and_session_survives() {
        let cfg = SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 16,
            fault: ServeFault::PanicOnBatch(1),
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(14), cfg);
        match session.encode("this batch panics") {
            Err(ServeError::Internal(msg)) => {
                assert!(msg.contains("injected fault"), "{msg}");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
        // The batcher must still be alive and serving.
        let emb = session.encode("the next batch succeeds").expect("session survives");
        assert_eq!(emb.len(), 16);
        let stats = session.shutdown();
        assert_eq!(stats.errors, 1, "{stats:?}");
        assert_eq!(stats.requests, 2, "{stats:?}");
    }

    #[test]
    fn install_swaps_the_model_and_flushes_the_cache() {
        let text = "alarm raised on amf";
        let bundle_a = tiny_bundle(20);
        let bundle_b = tiny_bundle(21);
        let cold_b: Vec<u32> = bundle_b
            .encode_batch(std::slice::from_ref(&text.to_string()))
            .expect("cold encode")
            .swap_remove(0)
            .iter()
            .map(|v| v.to_bits())
            .collect();

        let session = InferenceSession::new(bundle_a, SessionConfig::default());
        assert_eq!(session.model_version(), 1);
        let pre: Vec<u32> =
            session.encode(text).expect("encode on A").iter().map(|v| v.to_bits()).collect();
        // The answer is now cached; the swap must make that cache entry
        // unreachable.
        let version = session.install(bundle_b);
        assert_eq!(version, 2);
        assert_eq!(session.model_version(), 2);
        let post: Vec<u32> =
            session.encode(text).expect("encode on B").iter().map(|v| v.to_bits()).collect();
        assert_eq!(post, cold_b, "post-swap replies must match a cold session on the new bundle");
        assert_ne!(pre, post, "a stale cache hit would reproduce the old bundle's bits");
        let snap = session.metrics_snapshot();
        assert_eq!(snap.model_version, 2);
        let prom = session.prometheus_text();
        assert!(prom.contains("serve_model_version 2"), "{prom}");
        assert!(prom.contains("serve_rollover 1"), "{prom}");
        let stats = session.shutdown();
        assert_eq!(stats.rollovers, 1, "{stats:?}");
    }

    #[test]
    fn typed_error_dumps_flight_ring() {
        let dir = std::env::temp_dir().join(format!("tele_serve_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SessionConfig {
            telemetry: TelemetryConfig { flight_dir: Some(dir.clone()), ..Default::default() },
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(10), cfg);
        session.encode("warm the ring").expect("encode");
        assert!(session.encode_many_with_id(&[], 77).is_err());
        let stats = session.shutdown();
        assert_eq!(stats.flight_dumps, 1, "typed error must dump the flight ring");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .expect("flight dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("flight_"))
            .collect();
        assert_eq!(dumps.len(), 1);
        let body = std::fs::read_to_string(dumps[0].path()).expect("read dump");
        assert!(body.contains("\"request_id\":77"), "{body}");
        assert!(body.contains("empty_batch"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
