//! In-process inference sessions: one shared immutable model, one batcher
//! thread coalescing concurrent encode requests into padded micro-batches.
//!
//! ## Batching policy
//!
//! Requests enter a FIFO queue. The batcher opens a micro-batch at the first
//! queued request and closes it when either `max_batch` requests are queued
//! or `max_wait_us` has elapsed since the batch opened — whichever comes
//! first — then runs **one** padded forward pass for the whole batch. The
//! deadline bounds tail latency under light load; the size cap bounds peak
//! memory under heavy load.
//!
//! ## Why coalescing is sound
//!
//! The encode path is bit-deterministic under padding (see
//! [`ktelebert::TeleBert::encode_batch`]): a sentence encoded inside any
//! micro-batch yields exactly the `f32` bits it would yield encoded alone.
//! Requests may therefore be grouped arbitrarily — across callers, threads,
//! and connections — without observable effect on results, and cached
//! embeddings are interchangeable with freshly computed ones.
//!
//! ## Telemetry
//!
//! Every request carries an id (caller-supplied or assigned from the
//! session's counter) from enqueue to delivery. With
//! [`TelemetryConfig::tracing`] on, each phase of a request's life is timed
//! into sliding-window histograms (queue wait, batch assembly, forward) and
//! annotated into a bounded [`FlightRecorder`]; typed errors dump the ring
//! to `flight_<ts>.json` when a flight directory is configured.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ktelebert::{EncodeError, TeleBert};
use tele_trace::now_ns;
use tele_trace::recorder::FlightRecorder;

use crate::cache::{normalize_key, LruCache};
use crate::error::ServeError;
use crate::metrics::{MetricsSnapshot, ServeMetrics, ServeStats, TelemetryConfig};

/// Tuning knobs for an [`InferenceSession`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Largest micro-batch the batcher will form.
    pub max_batch: usize,
    /// Longest the batcher waits (µs) after opening a batch for more
    /// requests to join before running it.
    pub max_wait_us: u64,
    /// Embedding cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Telemetry plane configuration (windows, tracing, flight recorder).
    pub telemetry: TelemetryConfig,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_batch: 16,
            max_wait_us: 1_000,
            cache_capacity: 1_024,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// One waiter's completion slot: filled exactly once by the batcher.
struct Slot {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn deliver(&self, r: Result<Vec<f32>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Vec<f32>, ServeError> {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued request.
struct Pending {
    id: u64,
    text: String,
    key: String,
    enqueued_ns: u64,
    slot: Arc<Slot>,
}

struct Queue {
    items: VecDeque<Pending>,
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    /// Requests accepted and not yet answered.
    in_flight: AtomicU64,
}

/// Telemetry state shared between the session handle and the batcher:
/// metrics sink, flight-recorder ring, and the plane's configuration.
struct Telemetry {
    cfg: TelemetryConfig,
    metrics: Mutex<ServeMetrics>,
    recorder: Mutex<FlightRecorder>,
}

impl Telemetry {
    fn new(cfg: TelemetryConfig) -> Telemetry {
        let metrics = Mutex::new(ServeMetrics::new(&cfg));
        let recorder = Mutex::new(FlightRecorder::new(cfg.flight_capacity));
        Telemetry { cfg, metrics, recorder }
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, ServeMetrics> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Per-request annotation, elided when tracing is off.
    fn note(&self, kind: &'static str, id: Option<u64>, detail: impl Into<String>) {
        if !self.cfg.tracing {
            return;
        }
        self.recorder.lock().unwrap_or_else(|e| e.into_inner()).note(kind, id, detail);
    }

    /// Error annotation plus flight dump (when a dump dir is configured).
    /// Errors are always noted, even with per-request tracing off.
    fn error(&self, kind: &'static str, id: Option<u64>, detail: impl Into<String>) {
        self.recorder.lock().unwrap_or_else(|e| e.into_inner()).note(kind, id, detail);
        if let Some(dir) = &self.cfg.flight_dir {
            let dumped = self.recorder.lock().unwrap_or_else(|e| e.into_inner()).dump_to_dir(dir);
            match dumped {
                Ok(_) => self.metrics().flight_dumps += 1,
                Err(e) => eprintln!("serve: flight dump to {} failed: {e}", dir.display()),
            }
        }
    }
}

/// A thread-safe handle to one loaded model with a batching encode path.
///
/// The model is loaded once and shared immutably (`Arc`); any number of
/// threads may call [`encode`](Self::encode) concurrently. Requests are
/// coalesced into micro-batches by a dedicated batcher thread and answered
/// through a bounded LRU cache keyed by whitespace-normalized text.
pub struct InferenceSession {
    bundle: Arc<TeleBert>,
    shared: Arc<Shared>,
    telemetry: Arc<Telemetry>,
    next_id: AtomicU64,
    engine: Option<JoinHandle<()>>,
}

impl InferenceSession {
    /// Starts a session owning `bundle`.
    pub fn new(bundle: TeleBert, cfg: SessionConfig) -> Self {
        Self::from_arc(Arc::new(bundle), cfg)
    }

    /// Starts a session over an already-shared bundle.
    pub fn from_arc(bundle: Arc<TeleBert>, cfg: SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { items: VecDeque::new(), closed: false }),
            wake: Condvar::new(),
            in_flight: AtomicU64::new(0),
        });
        let telemetry = Arc::new(Telemetry::new(cfg.telemetry.clone()));
        let engine = {
            let bundle = Arc::clone(&bundle);
            let shared = Arc::clone(&shared);
            let telemetry = Arc::clone(&telemetry);
            std::thread::spawn(move || run_batcher(&bundle, &shared, &telemetry, &cfg))
        };
        InferenceSession {
            bundle,
            shared,
            telemetry,
            next_id: AtomicU64::new(1),
            engine: Some(engine),
        }
    }

    /// The model bundle this session serves.
    pub fn bundle(&self) -> &Arc<TeleBert> {
        &self.bundle
    }

    /// Draws the next request id from the session's counter.
    pub fn next_request_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Encodes one sentence, blocking until its micro-batch completes.
    pub fn encode(&self, text: &str) -> Result<Vec<f32>, ServeError> {
        let id = self.next_request_id();
        let slot = self.submit(text, id)?;
        slot.wait()
    }

    /// Encodes a group of sentences. All of them are enqueued in one burst —
    /// so the batcher can coalesce them into full micro-batches — and the
    /// call blocks until every one completes.
    pub fn encode_many(&self, texts: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        let id = self.next_request_id();
        self.encode_many_with_id(texts, id)
    }

    /// [`encode_many`](Self::encode_many) under a caller-chosen request id
    /// (the TCP server threads its wire-level id through here, so flight
    /// notes and the reply all carry the same id).
    pub fn encode_many_with_id(
        &self,
        texts: &[String],
        id: u64,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        if texts.is_empty() {
            self.telemetry.error("serve.error", Some(id), "empty_batch rejected at submit");
            return Err(ServeError::Encode(EncodeError::EmptyBatch));
        }
        self.telemetry.note("req.enqueue", Some(id), format!("texts={}", texts.len()));
        let slots: Vec<Arc<Slot>> =
            texts.iter().map(|t| self.submit(t, id)).collect::<Result<_, _>>()?;
        slots.into_iter().map(|s| s.wait()).collect()
    }

    fn submit(&self, text: &str, id: u64) -> Result<Arc<Slot>, ServeError> {
        let slot = Slot::new();
        let pending = Pending {
            id,
            text: text.to_string(),
            key: normalize_key(text),
            enqueued_ns: now_ns(),
            slot: Arc::clone(&slot),
        };
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            return Err(ServeError::SessionClosed);
        }
        q.items.push_back(pending);
        drop(q);
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        self.shared.wake.notify_all();
        Ok(slot)
    }

    /// Requests queued but not yet drained into a micro-batch.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).items.len() as u64
    }

    /// Requests accepted and not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.shared.in_flight.load(Ordering::Relaxed)
    }

    /// Current serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.telemetry.metrics().stats()
    }

    /// Live snapshot for the `metrics` wire op: gauges plus full stats.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let now = now_ns();
        let m = self.telemetry.metrics();
        MetricsSnapshot {
            now_ns: now,
            window_secs: self.telemetry.cfg.window_secs,
            rps_window: m.rps_window(now),
            queue_depth: self.queue_depth(),
            in_flight: self.in_flight(),
            stats: m.stats_at(now),
        }
    }

    /// Prometheus text exposition of the session's metrics.
    pub fn prometheus_text(&self) -> String {
        let now = now_ns();
        let snap =
            self.telemetry.metrics().registry_snapshot(now, self.queue_depth(), self.in_flight());
        tele_trace::export::prometheus_text(&snap)
    }

    /// Records the time spent serializing and writing one reply, µs
    /// (called by the TCP server after the socket write completes).
    pub fn record_write_us(&self, us: u64) {
        let now = now_ns();
        self.telemetry.metrics().record_write_us(now, us);
    }

    /// Annotates a server-side error into the flight ring and dumps the
    /// ring when a flight directory is configured.
    pub fn record_error(&self, code: &str, id: Option<u64>, detail: &str) {
        self.telemetry.error("serve.error", id, format!("code={code} {detail}"));
    }

    /// Appends a flight note (no-op with tracing off).
    pub fn flight_note(&self, kind: &'static str, id: Option<u64>, detail: String) {
        self.telemetry.note(kind, id, detail);
    }

    /// Publishes the session's metrics into the calling thread's trace
    /// registry (see [`ServeMetrics::publish`]).
    pub fn publish_metrics(&self) {
        self.telemetry.metrics().publish();
    }

    /// Shuts the session down: already-queued requests still complete, new
    /// submissions fail with [`ServeError::SessionClosed`]. Returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.closed = true;
        }
        self.shared.wake.notify_all();
        if let Some(engine) = self.engine.take() {
            // A panicked batcher already delivered nothing more; there is no
            // recovery beyond surfacing SessionClosed to future callers.
            let _ = engine.join();
        }
    }
}

impl Drop for InferenceSession {
    fn drop(&mut self) {
        self.close();
    }
}

/// The batcher loop: drain → coalesce → one forward → deliver.
fn run_batcher(bundle: &TeleBert, shared: &Shared, tel: &Telemetry, cfg: &SessionConfig) {
    let max_batch = cfg.max_batch.max(1);
    let mut cache = LruCache::new(cfg.cache_capacity);
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Sleep until there is work or the session closes.
            while q.items.is_empty() && !q.closed {
                q = shared.wake.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.items.is_empty() {
                return; // closed and drained
            }
            // Batch opens now; hold it open briefly for stragglers, unless
            // it is already full or the session is draining for shutdown.
            let deadline = now_ns().saturating_add(cfg.max_wait_us.saturating_mul(1_000));
            while q.items.len() < max_batch && !q.closed {
                let now = now_ns();
                if now >= deadline {
                    break;
                }
                let wait = Duration::from_nanos(deadline - now);
                let (guard, _timeout) =
                    shared.wake.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.items.len().min(max_batch);
            q.items.drain(..take).collect::<Vec<Pending>>()
        };
        let n = batch.len() as u64;
        run_one_batch(bundle, &mut cache, tel, batch);
        shared.in_flight.fetch_sub(n, Ordering::Relaxed);
    }
}

/// Formats the distinct request ids in a batch for a flight note (batches
/// are small — `max_batch` entries at most).
fn id_list(batch: &[Pending]) -> String {
    let mut ids: Vec<u64> = batch.iter().map(|p| p.id).collect();
    ids.dedup();
    let mut out = String::new();
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out
}

/// Executes one micro-batch: cache lookups, in-batch dedup, a single padded
/// forward over the misses, then per-request delivery and metrics.
fn run_one_batch(bundle: &TeleBert, cache: &mut LruCache, tel: &Telemetry, batch: Vec<Pending>) {
    let t0 = now_ns();
    let tracing = tel.cfg.tracing;
    let n = batch.len();
    let mut results: Vec<Option<Vec<f32>>> = Vec::with_capacity(n);
    let mut miss_index: HashMap<&str, usize> = HashMap::new();
    let mut miss_texts: Vec<String> = Vec::new();
    let mut hits = 0u64;
    for p in &batch {
        match cache.get(&p.key) {
            Some(v) => {
                hits += 1;
                results.push(Some(v.to_vec()));
            }
            None => {
                if !miss_index.contains_key(p.key.as_str()) {
                    miss_index.insert(p.key.as_str(), miss_texts.len());
                    miss_texts.push(p.text.clone());
                }
                results.push(None);
            }
        }
    }

    let misses = n as u64 - hits;
    let unique = miss_texts.len() as u64;
    let assembled = now_ns();
    let fresh = if miss_texts.is_empty() {
        Vec::new()
    } else {
        match bundle.encode_batch(&miss_texts) {
            Ok(embs) => embs,
            Err(e) => {
                // The whole forward failed: every request in the batch gets
                // the same typed error.
                let failed = now_ns();
                let elapsed = failed.saturating_sub(t0);
                let mut m = tel.metrics();
                m.record_batch(failed, n as u64, hits, misses, unique, elapsed);
                for p in &batch {
                    m.record_request(failed, failed.saturating_sub(p.enqueued_ns), false);
                }
                drop(m);
                let code = crate::protocol::error_code(&ServeError::Encode(e.clone()));
                tel.error(
                    "serve.error",
                    batch.first().map(|p| p.id),
                    format!("code={code} rows={n} ids=[{}]", id_list(&batch)),
                );
                for p in &batch {
                    p.slot.deliver(Err(ServeError::Encode(e.clone())));
                }
                return;
            }
        }
    };
    let forwarded = now_ns();
    for (key, idx) in &miss_index {
        cache.insert((*key).to_string(), fresh[*idx].clone());
    }

    let done = now_ns();
    let elapsed = done.saturating_sub(t0);
    let mut m = tel.metrics();
    m.record_batch(done, n as u64, hits, misses, unique, elapsed);
    for p in &batch {
        m.record_request(done, done.saturating_sub(p.enqueued_ns), true);
    }
    if tracing {
        for p in &batch {
            m.record_queue_us(done, t0.saturating_sub(p.enqueued_ns) / 1_000);
        }
        m.record_assemble_us(done, assembled.saturating_sub(t0) / 1_000);
        if unique > 0 {
            m.record_forward_us(done, forwarded.saturating_sub(assembled) / 1_000);
        }
    }
    drop(m);
    tel.note(
        "batch.exec",
        None,
        format!("rows={n} unique={unique} hits={hits} ids=[{}]", id_list(&batch)),
    );
    for (p, r) in batch.iter().zip(results.iter_mut()) {
        let emb = match r.take() {
            Some(v) => v,
            // A miss resolved by this batch's forward (dedup'd rows share
            // one embedding).
            None => miss_index.get(p.key.as_str()).map(|&i| fresh[i].clone()).unwrap_or_default(),
        };
        p.slot.deliver(Ok(emb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    #[test]
    fn single_request_roundtrip() {
        let session = InferenceSession::new(tiny_bundle(0), SessionConfig::default());
        let emb = session.encode("control plane congested").expect("encode");
        assert_eq!(emb.len(), 16);
        assert!(emb.iter().all(|v| v.is_finite()));
        let stats = session.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn session_results_match_direct_encode_bitwise() {
        let bundle = Arc::new(tiny_bundle(1));
        let session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        let texts = vec!["alarm raised on amf".to_string(), "link down on smf node".to_string()];
        let via_session = session.encode_many(&texts).expect("encode_many");
        for (text, got) in texts.iter().zip(&via_session) {
            let solo = bundle.encode_batch(std::slice::from_ref(text)).expect("solo");
            let a: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = solo[0].iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "batched result must be bit-identical to solo encode");
        }
    }

    #[test]
    fn repeated_text_is_served_from_cache() {
        let session = InferenceSession::new(tiny_bundle(2), SessionConfig::default());
        let a = session.encode("network congestion points increased").expect("first");
        let b = session.encode("network   congestion points\tincreased").expect("second");
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(stats.cache_hits >= 1, "whitespace-variant repeat must hit the cache: {stats:?}");
        assert_eq!(stats.encoded_sentences, 1, "only one unique forward row");
    }

    #[test]
    fn encode_many_coalesces_into_fewer_batches() {
        let cfg = SessionConfig {
            max_batch: 8,
            max_wait_us: 20_000,
            cache_capacity: 0,
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(3), cfg);
        let texts: Vec<String> = (0..8).map(|i| format!("event number {i} on node")).collect();
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(out.len(), 8);
        let stats = session.shutdown();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches < 8,
            "burst submission must coalesce (got {} batches)",
            stats.batches
        );
    }

    #[test]
    fn empty_request_is_a_typed_error() {
        let session = InferenceSession::new(tiny_bundle(4), SessionConfig::default());
        match session.encode_many(&[]) {
            Err(ServeError::Encode(EncodeError::EmptyBatch)) => {}
            other => panic!("expected EmptyBatch, got {other:?}"),
        }
    }

    #[test]
    fn closed_session_rejects_new_requests() {
        let bundle = Arc::new(tiny_bundle(5));
        let mut session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        session.close();
        match session.encode("anything") {
            Err(ServeError::SessionClosed) => {}
            other => panic!("expected SessionClosed, got {other:?}"),
        }
    }

    #[test]
    fn in_batch_duplicates_share_one_forward_row() {
        let cfg = SessionConfig {
            max_batch: 8,
            max_wait_us: 20_000,
            cache_capacity: 16,
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(6), cfg);
        let texts: Vec<String> = vec![
            "same fault text".into(),
            "same fault text".into(),
            "same  fault   text".into(),
            "a different fault".into(),
        ];
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(
            out[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out[2].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(
            stats.encoded_sentences <= 2 * stats.batches,
            "dedup must collapse duplicate rows: {stats:?}"
        );
    }

    #[test]
    fn phase_histograms_fill_under_tracing() {
        let session = InferenceSession::new(tiny_bundle(7), SessionConfig::default());
        let texts: Vec<String> = (0..4).map(|i| format!("phase sample {i}")).collect();
        session.encode_many(&texts).expect("encode_many");
        let stats = session.shutdown();
        assert_eq!(stats.phases.queue_us.count, 4, "{:?}", stats.phases);
        assert!(stats.phases.assemble_us.count >= 1);
        assert!(stats.phases.forward_us.count >= 1);
        assert_eq!(stats.latency_window.queue_us.count, 4);
        assert!(stats.latency_window.request_latency.count >= 4);
    }

    #[test]
    fn tracing_off_skips_phases_but_keeps_cumulative() {
        let cfg = SessionConfig {
            telemetry: TelemetryConfig { tracing: false, ..Default::default() },
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(8), cfg);
        session.encode("a quiet request").expect("encode");
        let stats = session.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.phases.queue_us.count, 0);
        assert_eq!(stats.request_latency.count, 1);
    }

    #[test]
    fn metrics_snapshot_reports_gauges_and_window() {
        let session = InferenceSession::new(tiny_bundle(9), SessionConfig::default());
        session.encode("snapshot me").expect("encode");
        // The batcher decrements in-flight just after delivering the result,
        // so give the gauge a moment to settle before snapshotting.
        for _ in 0..200 {
            if session.in_flight() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let snap = session.metrics_snapshot();
        assert_eq!(snap.stats.requests, 1);
        assert_eq!(snap.in_flight, 0);
        assert!(snap.rps_window > 0.0);
        assert!(snap.window_secs > 0);
        let prom = session.prometheus_text();
        assert!(prom.contains("serve_requests 1"), "{prom}");
    }

    #[test]
    fn typed_error_dumps_flight_ring() {
        let dir = std::env::temp_dir().join(format!("tele_serve_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = SessionConfig {
            telemetry: TelemetryConfig { flight_dir: Some(dir.clone()), ..Default::default() },
            ..Default::default()
        };
        let session = InferenceSession::new(tiny_bundle(10), cfg);
        session.encode("warm the ring").expect("encode");
        assert!(session.encode_many_with_id(&[], 77).is_err());
        let stats = session.shutdown();
        assert_eq!(stats.flight_dumps, 1, "typed error must dump the flight ring");
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .expect("flight dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("flight_"))
            .collect();
        assert_eq!(dumps.len(), 1);
        let body = std::fs::read_to_string(dumps[0].path()).expect("read dump");
        assert!(body.contains("\"request_id\":77"), "{body}");
        assert!(body.contains("empty_batch"), "{body}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
