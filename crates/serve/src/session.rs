//! In-process inference sessions: one shared immutable model, one batcher
//! thread coalescing concurrent encode requests into padded micro-batches.
//!
//! ## Batching policy
//!
//! Requests enter a FIFO queue. The batcher opens a micro-batch at the first
//! queued request and closes it when either `max_batch` requests are queued
//! or `max_wait_us` has elapsed since the batch opened — whichever comes
//! first — then runs **one** padded forward pass for the whole batch. The
//! deadline bounds tail latency under light load; the size cap bounds peak
//! memory under heavy load.
//!
//! ## Why coalescing is sound
//!
//! The encode path is bit-deterministic under padding (see
//! [`ktelebert::TeleBert::encode_batch`]): a sentence encoded inside any
//! micro-batch yields exactly the `f32` bits it would yield encoded alone.
//! Requests may therefore be grouped arbitrarily — across callers, threads,
//! and connections — without observable effect on results, and cached
//! embeddings are interchangeable with freshly computed ones.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ktelebert::{EncodeError, TeleBert};
use tele_trace::now_ns;

use crate::cache::{normalize_key, LruCache};
use crate::error::ServeError;
use crate::metrics::{ServeMetrics, ServeStats};

/// Tuning knobs for an [`InferenceSession`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Largest micro-batch the batcher will form.
    pub max_batch: usize,
    /// Longest the batcher waits (µs) after opening a batch for more
    /// requests to join before running it.
    pub max_wait_us: u64,
    /// Embedding cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { max_batch: 16, max_wait_us: 1_000, cache_capacity: 1_024 }
    }
}

/// One waiter's completion slot: filled exactly once by the batcher.
struct Slot {
    result: Mutex<Option<Result<Vec<f32>, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { result: Mutex::new(None), ready: Condvar::new() })
    }

    fn deliver(&self, r: Result<Vec<f32>, ServeError>) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Vec<f32>, ServeError> {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.ready.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// One queued request.
struct Pending {
    text: String,
    key: String,
    enqueued_ns: u64,
    slot: Arc<Slot>,
}

struct Queue {
    items: VecDeque<Pending>,
    closed: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
}

/// A thread-safe handle to one loaded model with a batching encode path.
///
/// The model is loaded once and shared immutably (`Arc`); any number of
/// threads may call [`encode`](Self::encode) concurrently. Requests are
/// coalesced into micro-batches by a dedicated batcher thread and answered
/// through a bounded LRU cache keyed by whitespace-normalized text.
pub struct InferenceSession {
    bundle: Arc<TeleBert>,
    shared: Arc<Shared>,
    metrics: Arc<Mutex<ServeMetrics>>,
    engine: Option<JoinHandle<()>>,
}

impl InferenceSession {
    /// Starts a session owning `bundle`.
    pub fn new(bundle: TeleBert, cfg: SessionConfig) -> Self {
        Self::from_arc(Arc::new(bundle), cfg)
    }

    /// Starts a session over an already-shared bundle.
    pub fn from_arc(bundle: Arc<TeleBert>, cfg: SessionConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { items: VecDeque::new(), closed: false }),
            wake: Condvar::new(),
        });
        let metrics = Arc::new(Mutex::new(ServeMetrics::default()));
        let engine = {
            let bundle = Arc::clone(&bundle);
            let shared = Arc::clone(&shared);
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || run_batcher(&bundle, &shared, &metrics, &cfg))
        };
        InferenceSession { bundle, shared, metrics, engine: Some(engine) }
    }

    /// The model bundle this session serves.
    pub fn bundle(&self) -> &Arc<TeleBert> {
        &self.bundle
    }

    /// Encodes one sentence, blocking until its micro-batch completes.
    pub fn encode(&self, text: &str) -> Result<Vec<f32>, ServeError> {
        let slot = self.submit(text)?;
        slot.wait()
    }

    /// Encodes a group of sentences. All of them are enqueued in one burst —
    /// so the batcher can coalesce them into full micro-batches — and the
    /// call blocks until every one completes.
    pub fn encode_many(&self, texts: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        if texts.is_empty() {
            return Err(ServeError::Encode(EncodeError::EmptyBatch));
        }
        let slots: Vec<Arc<Slot>> =
            texts.iter().map(|t| self.submit(t)).collect::<Result<_, _>>()?;
        slots.into_iter().map(|s| s.wait()).collect()
    }

    fn submit(&self, text: &str) -> Result<Arc<Slot>, ServeError> {
        let slot = Slot::new();
        let pending = Pending {
            text: text.to_string(),
            key: normalize_key(text),
            enqueued_ns: now_ns(),
            slot: Arc::clone(&slot),
        };
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if q.closed {
            return Err(ServeError::SessionClosed);
        }
        q.items.push_back(pending);
        drop(q);
        self.shared.wake.notify_all();
        Ok(slot)
    }

    /// Current serving statistics.
    pub fn stats(&self) -> ServeStats {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner()).stats()
    }

    /// Publishes the session's metrics into the calling thread's trace
    /// registry (see [`ServeMetrics::publish`]).
    pub fn publish_metrics(&self) {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner()).publish();
    }

    /// Shuts the session down: already-queued requests still complete, new
    /// submissions fail with [`ServeError::SessionClosed`]. Returns the
    /// final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.closed = true;
        }
        self.shared.wake.notify_all();
        if let Some(engine) = self.engine.take() {
            // A panicked batcher already delivered nothing more; there is no
            // recovery beyond surfacing SessionClosed to future callers.
            let _ = engine.join();
        }
    }
}

impl Drop for InferenceSession {
    fn drop(&mut self) {
        self.close();
    }
}

/// The batcher loop: drain → coalesce → one forward → deliver.
fn run_batcher(
    bundle: &TeleBert,
    shared: &Shared,
    metrics: &Mutex<ServeMetrics>,
    cfg: &SessionConfig,
) {
    let max_batch = cfg.max_batch.max(1);
    let mut cache = LruCache::new(cfg.cache_capacity);
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Sleep until there is work or the session closes.
            while q.items.is_empty() && !q.closed {
                q = shared.wake.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.items.is_empty() {
                return; // closed and drained
            }
            // Batch opens now; hold it open briefly for stragglers, unless
            // it is already full or the session is draining for shutdown.
            let deadline = now_ns().saturating_add(cfg.max_wait_us.saturating_mul(1_000));
            while q.items.len() < max_batch && !q.closed {
                let now = now_ns();
                if now >= deadline {
                    break;
                }
                let wait = Duration::from_nanos(deadline - now);
                let (guard, _timeout) =
                    shared.wake.wait_timeout(q, wait).unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
            let take = q.items.len().min(max_batch);
            q.items.drain(..take).collect::<Vec<Pending>>()
        };
        run_one_batch(bundle, &mut cache, metrics, batch);
    }
}

/// Executes one micro-batch: cache lookups, in-batch dedup, a single padded
/// forward over the misses, then per-request delivery and metrics.
fn run_one_batch(
    bundle: &TeleBert,
    cache: &mut LruCache,
    metrics: &Mutex<ServeMetrics>,
    batch: Vec<Pending>,
) {
    let t0 = now_ns();
    let n = batch.len();
    let mut results: Vec<Option<Vec<f32>>> = Vec::with_capacity(n);
    let mut miss_index: HashMap<&str, usize> = HashMap::new();
    let mut miss_texts: Vec<String> = Vec::new();
    let mut hits = 0u64;
    for p in &batch {
        match cache.get(&p.key) {
            Some(v) => {
                hits += 1;
                results.push(Some(v.to_vec()));
            }
            None => {
                if !miss_index.contains_key(p.key.as_str()) {
                    miss_index.insert(p.key.as_str(), miss_texts.len());
                    miss_texts.push(p.text.clone());
                }
                results.push(None);
            }
        }
    }

    let misses = n as u64 - hits;
    let unique = miss_texts.len() as u64;
    let fresh = if miss_texts.is_empty() {
        Vec::new()
    } else {
        match bundle.encode_batch(&miss_texts) {
            Ok(embs) => embs,
            Err(e) => {
                // The whole forward failed: every request in the batch gets
                // the same typed error.
                let elapsed = now_ns().saturating_sub(t0);
                let mut m = metrics.lock().unwrap_or_else(|e2| e2.into_inner());
                m.record_batch(n as u64, hits, misses, unique, elapsed);
                for p in &batch {
                    m.record_request(now_ns().saturating_sub(p.enqueued_ns), false);
                }
                drop(m);
                for p in &batch {
                    p.slot.deliver(Err(ServeError::Encode(e.clone())));
                }
                return;
            }
        }
    };
    for (key, idx) in &miss_index {
        cache.insert((*key).to_string(), fresh[*idx].clone());
    }

    let elapsed = now_ns().saturating_sub(t0);
    let mut m = metrics.lock().unwrap_or_else(|e| e.into_inner());
    m.record_batch(n as u64, hits, misses, unique, elapsed);
    for p in &batch {
        m.record_request(now_ns().saturating_sub(p.enqueued_ns), true);
    }
    drop(m);
    for (p, r) in batch.iter().zip(results.iter_mut()) {
        let emb = match r.take() {
            Some(v) => v,
            // A miss resolved by this batch's forward (dedup'd rows share
            // one embedding).
            None => miss_index.get(p.key.as_str()).map(|&i| fresh[i].clone()).unwrap_or_default(),
        };
        p.slot.deliver(Ok(emb));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    #[test]
    fn single_request_roundtrip() {
        let session = InferenceSession::new(tiny_bundle(0), SessionConfig::default());
        let emb = session.encode("control plane congested").expect("encode");
        assert_eq!(emb.len(), 16);
        assert!(emb.iter().all(|v| v.is_finite()));
        let stats = session.shutdown();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn session_results_match_direct_encode_bitwise() {
        let bundle = Arc::new(tiny_bundle(1));
        let session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        let texts = vec!["alarm raised on amf".to_string(), "link down on smf node".to_string()];
        let via_session = session.encode_many(&texts).expect("encode_many");
        for (text, got) in texts.iter().zip(&via_session) {
            let solo = bundle.encode_batch(std::slice::from_ref(text)).expect("solo");
            let a: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = solo[0].iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "batched result must be bit-identical to solo encode");
        }
    }

    #[test]
    fn repeated_text_is_served_from_cache() {
        let session = InferenceSession::new(tiny_bundle(2), SessionConfig::default());
        let a = session.encode("network congestion points increased").expect("first");
        let b = session.encode("network   congestion points\tincreased").expect("second");
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(stats.cache_hits >= 1, "whitespace-variant repeat must hit the cache: {stats:?}");
        assert_eq!(stats.encoded_sentences, 1, "only one unique forward row");
    }

    #[test]
    fn encode_many_coalesces_into_fewer_batches() {
        let cfg = SessionConfig { max_batch: 8, max_wait_us: 20_000, cache_capacity: 0 };
        let session = InferenceSession::new(tiny_bundle(3), cfg);
        let texts: Vec<String> = (0..8).map(|i| format!("event number {i} on node")).collect();
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(out.len(), 8);
        let stats = session.shutdown();
        assert_eq!(stats.requests, 8);
        assert!(
            stats.batches < 8,
            "burst submission must coalesce (got {} batches)",
            stats.batches
        );
    }

    #[test]
    fn empty_request_is_a_typed_error() {
        let session = InferenceSession::new(tiny_bundle(4), SessionConfig::default());
        match session.encode_many(&[]) {
            Err(ServeError::Encode(EncodeError::EmptyBatch)) => {}
            other => panic!("expected EmptyBatch, got {other:?}"),
        }
    }

    #[test]
    fn closed_session_rejects_new_requests() {
        let bundle = Arc::new(tiny_bundle(5));
        let mut session = InferenceSession::from_arc(Arc::clone(&bundle), SessionConfig::default());
        session.close();
        match session.encode("anything") {
            Err(ServeError::SessionClosed) => {}
            other => panic!("expected SessionClosed, got {other:?}"),
        }
    }

    #[test]
    fn in_batch_duplicates_share_one_forward_row() {
        let cfg = SessionConfig { max_batch: 8, max_wait_us: 20_000, cache_capacity: 16 };
        let session = InferenceSession::new(tiny_bundle(6), cfg);
        let texts: Vec<String> = vec![
            "same fault text".into(),
            "same fault text".into(),
            "same  fault   text".into(),
            "a different fault".into(),
        ];
        let out = session.encode_many(&texts).expect("encode_many");
        assert_eq!(
            out[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out[2].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
        let stats = session.shutdown();
        assert!(
            stats.encoded_sentences <= 2 * stats.batches,
            "dedup must collapse duplicate rows: {stats:?}"
        );
    }
}
