//! Bounded LRU embedding cache keyed by normalized input text.
//!
//! The cache exploits the encode path's bit-determinism: the embedding of a
//! sentence does not depend on which batch it was computed in, so a cached
//! vector is byte-for-byte the vector a fresh forward would produce. Keys are
//! whitespace-normalized (runs of whitespace collapse to one space, ends
//! trimmed), which is exactly the equivalence the tokenizer's
//! `split_whitespace` pre-tokenization already induces — two texts with equal
//! keys tokenize identically, so sharing a cache line between them is sound.
//! Case is preserved: the tokenizer does not fold case, so neither may the
//! key.
//!
//! Implementation: a slab of nodes linked into a doubly-linked recency list
//! by index (no `unsafe`, no pointer juggling), plus a `HashMap` from key to
//! slab index. All operations are O(1) amortized.

use std::collections::HashMap;

/// Sentinel index meaning "no node".
const NIL: usize = usize::MAX;

struct Node {
    key: String,
    value: Vec<f32>,
    prev: usize,
    next: usize,
}

/// A bounded least-recently-used map from normalized text to embedding.
///
/// Capacity 0 disables caching: every `get` misses and `insert` is a no-op.
pub struct LruCache {
    capacity: usize,
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    hits: u64,
    misses: u64,
}

/// Collapses runs of whitespace to single spaces and trims the ends — the
/// cache-key normalization. Matches the tokenizer's `split_whitespace`
/// pre-tokenization, so equal keys imply equal token sequences.
pub fn normalize_key(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for word in text.split_whitespace() {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(word);
    }
    out
}

impl LruCache {
    /// Creates a cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
        }
    }

    /// Unlinks node `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    /// Links node `i` at the head (most recently used).
    fn link_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up a normalized key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &str) -> Option<&[f32]> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.link_front(i);
                }
                Some(&self.nodes[i].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least-recently-used
    /// entry if the cache is full. No-op at capacity 0.
    pub fn insert(&mut self, key: String, value: Vec<f32>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.nodes[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.link_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            if lru != NIL {
                self.unlink(lru);
                self.map.remove(&self.nodes[lru].key);
                self.free.push(lru);
            }
        }
        let node = Node { key: key.clone(), value, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, i);
        self.link_front(i);
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups that hit, or 0.0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f32) -> Vec<f32> {
        vec![x, x + 1.0]
    }

    #[test]
    fn normalize_key_collapses_whitespace_preserves_case() {
        assert_eq!(normalize_key("  NF  link\tdown \n"), "NF link down");
        assert_eq!(normalize_key("plain"), "plain");
        assert_eq!(normalize_key("   "), "");
        // Case is significant to the tokenizer's vocab, so it stays.
        assert_ne!(normalize_key("Alarm"), normalize_key("alarm"));
    }

    #[test]
    fn get_hit_and_miss_counting() {
        let mut c = LruCache::new(4);
        assert!(c.get("a").is_none());
        c.insert("a".into(), v(1.0));
        assert_eq!(c.get("a"), Some(&v(1.0)[..]));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), v(1.0));
        c.insert("b".into(), v(2.0));
        // Touch "a" so "b" becomes the LRU entry.
        assert!(c.get("a").is_some());
        c.insert("c".into(), v(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none(), "LRU entry must be evicted");
        assert!(c.get("a").is_some());
        assert!(c.get("c").is_some());
    }

    #[test]
    fn eviction_reuses_slab_slots() {
        let mut c = LruCache::new(2);
        for i in 0..100 {
            c.insert(format!("k{i}"), v(i as f32));
        }
        assert_eq!(c.len(), 2);
        assert!(c.nodes.len() <= 3, "slab must recycle evicted slots");
        assert!(c.get("k99").is_some());
        assert!(c.get("k98").is_some());
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a".into(), v(1.0));
        c.insert("b".into(), v(2.0));
        c.insert("a".into(), v(9.0));
        c.insert("c".into(), v(3.0));
        // "b" was LRU after "a" was refreshed by reinsert.
        assert!(c.get("b").is_none());
        assert_eq!(c.get("a"), Some(&v(9.0)[..]));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert("a".into(), v(1.0));
        assert!(c.get("a").is_none());
        assert!(c.is_empty());
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn single_capacity_cache_churns_correctly() {
        let mut c = LruCache::new(1);
        c.insert("a".into(), v(1.0));
        c.insert("b".into(), v(2.0));
        assert!(c.get("a").is_none());
        assert_eq!(c.get("b"), Some(&v(2.0)[..]));
    }
}
