//! # tele-serve
//!
//! The inference runtime: serve trained [`ktelebert`] bundles to concurrent
//! callers with request batching, an embedding cache, and typed errors.
//!
//! The runtime is built on one property of the core encode path: padded
//! batched encoding is **bit-deterministic** — a sentence's embedding does
//! not depend on which micro-batch computed it (padded key positions carry
//! exactly-zero attention weight, and every other op is per-position). That
//! makes request coalescing and caching *invisible* to callers: any
//! grouping, any cache state, same bits.
//!
//! Layers, bottom up:
//!
//! * [`cache`] — a bounded LRU from whitespace-normalized text to embedding,
//!   with hit/miss accounting;
//! * [`session`] — [`InferenceSession`]: an `Arc`-shared immutable model
//!   behind a batcher thread that coalesces concurrent encode requests into
//!   padded micro-batches (closed by a size cap or a wait deadline), with
//!   bounded admission (typed [`ServeError::Overloaded`] sheds), per-request
//!   deadlines, and hot model rollover ([`InferenceSession::install`]);
//! * [`server`] — `tele serve`'s TCP front-end: newline-delimited JSON over
//!   `std::net`, a bounded accept queue, a hand-rolled worker pool,
//!   cross-connection batching, a LATEST-pointer checkpoint watcher, and a
//!   matching blocking [`ServeClient`] with timeouts and bounded retry;
//! * [`bench`] — `tele serve-bench`'s load generator comparing the batched
//!   runtime against the sequential baseline with a bit-identity check,
//!   the tracing-on/off overhead comparison, and the open-loop overload
//!   sweep behind `--arrival-rps`;
//! * [`faults`] — deterministic serve-layer fault injection ([`ServeFault`])
//!   for the chaos suite;
//! * [`metrics`] — the telemetry plane: cumulative **and** sliding-window
//!   `serve.*` histograms, per-phase request decomposition
//!   (queue/assemble/forward/write), live gauges, the `metrics` wire
//!   snapshot, and Prometheus export;
//! * [`error`] — [`ServeError`], the typed failure surface.
//!
//! Every request carries an id from accept to reply; a bounded flight
//! recorder (see `tele_trace::recorder`) keeps recent annotations and dumps
//! them atomically on typed errors when a flight directory is configured.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bench;
pub mod cache;
pub mod error;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod session;

pub use bench::{
    run_bench, run_overhead_bench, run_overload_bench, workload, BenchConfig, BenchReport,
    OverheadReport, OverloadReport, RatePoint,
};
pub use cache::{normalize_key, LruCache};
pub use error::ServeError;
pub use faults::ServeFault;
pub use metrics::{
    LatencySummary, MetricsSnapshot, PhaseStats, ServeMetrics, ServeStats, TelemetryConfig,
    WindowStats,
};
pub use protocol::{Request, Response};
pub use server::{
    backoff_delay_ms, serve, ClientConfig, ServeClient, ServeHandle, ServerConfig, WatchConfig,
};
pub use session::{effective_wait_us, EncodeTicket, InferenceSession, SessionConfig};

#[cfg(test)]
pub(crate) mod testutil {
    use ktelebert::{ModelConfig, TagNormalizer, TeleBert, TeleModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tele_tensor::nn::TransformerConfig;
    use tele_tensor::ParamStore;
    use tele_tokenizer::{TeleTokenizer, TokenizerConfig};

    /// A tiny randomly initialized bundle — untrained, but encode is
    /// deterministic in eval mode, which is all the runtime tests need.
    pub fn tiny_bundle(seed: u64) -> TeleBert {
        let corpus: Vec<String> = (0..20)
            .map(|i| {
                format!(
                    "alarm {i} raised on network function nf-{} severity {} link degraded",
                    i % 7,
                    i % 3
                )
            })
            .collect();
        let tokenizer = TeleTokenizer::train(corpus, &TokenizerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let cfg = TransformerConfig {
            vocab: tokenizer.vocab_size(),
            dim: 16,
            layers: 1,
            heads: 2,
            ffn_hidden: 32,
            max_len: 32,
            dropout: 0.1,
        };
        // The canonical trainer prefix, so save_bundle/load_bundle
        // round-trips (rollover tests) find every parameter by name.
        let model = TeleModel::new(
            &mut store,
            "telebert",
            &ModelConfig { encoder: cfg, anenc: None },
            &mut rng,
        );
        TeleBert {
            store,
            model,
            tokenizer,
            normalizer: TagNormalizer::new(),
            device: tele_tensor::DeviceKind::Ref,
        }
    }
}
