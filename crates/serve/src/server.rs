//! The TCP serving front-end: `std::net::TcpListener`, a hand-rolled worker
//! pool, and newline-delimited JSON framing (see [`crate::protocol`]).
//!
//! Topology: one accept thread pushes connections onto a **bounded** queue; N
//! worker threads each own one connection at a time and answer its requests
//! through the shared [`InferenceSession`] — so batching happens *across*
//! connections, not per connection. Reads carry a short timeout so workers
//! re-check the shutdown flag even while a client sits idle, which bounds
//! shutdown latency without a dedicated reaper.
//!
//! # Overload behavior
//!
//! Admission control is layered: when the connection queue is already at
//! [`ServerConfig::accept_queue`], new connections are answered with one
//! typed `overloaded` error line and closed instead of queueing without
//! bound; accepted requests can still be shed by the session's own bounded
//! request queue. A per-connection idle budget
//! ([`ServerConfig::idle_timeout_ms`]) cuts slow-loris peers — clients that
//! hold a worker by trickling bytes without ever completing a frame — while
//! partial frames interrupted by the read-poll timeout are preserved across
//! polls, so slow-but-live clients are never misparsed.
//!
//! # Hot rollover
//!
//! A model swap arrives two ways: the `reload` wire op names a bundle file
//! explicitly, or a [`WatchConfig`] polls a checkpoint directory's `LATEST`
//! pointer and installs each newly pointed-at bundle. Both paths validate
//! with [`ktelebert::load_bundle`] *before* touching the serving session; a
//! corrupt candidate leaves the old bundle serving and surfaces a typed
//! checkpoint error.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ktelebert::TeleBert;
use tele_trace::now_ns;

use crate::error::ServeError;
use crate::metrics::ServeStats;
use crate::protocol::{error_code, Request, Response};
use crate::session::{InferenceSession, SessionConfig};

/// How long a worker blocks on a socket read before re-checking shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Socket write timeout: a peer that stops draining its receive buffer must
/// not pin a worker forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Write budget for the single shed line sent to a rejected connection.
const SHED_WRITE_TIMEOUT: Duration = Duration::from_millis(500);

/// Checkpoint-directory watching: poll `dir`'s `LATEST` pointer and hot-swap
/// the serving bundle when it names a new snapshot.
#[derive(Clone, Debug)]
pub struct WatchConfig {
    /// Checkpoint directory holding snapshots and the `LATEST` pointer file.
    pub dir: PathBuf,
    /// Poll interval, milliseconds (floored to 50).
    pub interval_ms: u64,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (the handle reports it).
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Accepted connections queued ahead of the worker pool before new
    /// arrivals are shed with a typed `overloaded` line (min 1).
    pub accept_queue: usize,
    /// Per-connection idle budget, ms: a connection that completes no frame
    /// for this long is closed (slow-loris guard). 0 disables the cut.
    pub idle_timeout_ms: u64,
    /// Optional LATEST-pointer watcher for hot checkpoint rollover.
    pub watch: Option<WatchConfig>,
    /// Batching and cache knobs for the shared session.
    pub session: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 4,
            accept_queue: 128,
            idle_timeout_ms: 60_000,
            watch: None,
            session: SessionConfig::default(),
        }
    }
}

struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
}

struct Control {
    stop: AtomicBool,
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl Control {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut stopped = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        *stopped = true;
        self.cv.notify_all();
    }

    fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running serve endpoint. Dropping the handle shuts the server down.
pub struct ServeHandle {
    addr: SocketAddr,
    control: Arc<Control>,
    queue: Arc<ConnQueue>,
    session: Arc<InferenceSession>,
    accept: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts serving `bundle` per `cfg`. Returns once the listener is bound and
/// the worker pool is up; serving proceeds on background threads.
pub fn serve(bundle: TeleBert, cfg: &ServerConfig) -> Result<ServeHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let session = Arc::new(InferenceSession::new(bundle, cfg.session.clone()));
    let control = Arc::new(Control {
        stop: AtomicBool::new(false),
        stopped: Mutex::new(false),
        cv: Condvar::new(),
    });
    let accept_queue = cfg.accept_queue.max(1);
    let queue = Arc::new(ConnQueue {
        conns: Mutex::new(VecDeque::with_capacity(accept_queue.min(1_024))),
        wake: Condvar::new(),
    });

    let accept = {
        let control = Arc::clone(&control);
        let queue = Arc::clone(&queue);
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            let mut conn_seq = 0u64;
            for stream in listener.incoming() {
                if control.is_stopping() {
                    break;
                }
                if let Ok(stream) = stream {
                    conn_seq += 1;
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "unknown".into());
                    let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
                    if conns.len() >= accept_queue {
                        let depth = conns.len() as u64;
                        drop(conns);
                        session.record_shed(
                            1,
                            None,
                            &format!(
                                "accept queue full: conn={conn_seq} peer={peer} \
                                 depth={depth} capacity={accept_queue}"
                            ),
                        );
                        shed_connection(stream, depth, accept_queue as u64);
                        continue;
                    }
                    session.flight_note(
                        "conn.accept",
                        None,
                        format!("conn={conn_seq} peer={peer}"),
                    );
                    conns.push_back(stream);
                    drop(conns);
                    queue.wake.notify_one();
                }
            }
        })
    };

    let watcher = cfg.watch.clone().map(|watch| {
        let control = Arc::clone(&control);
        let session = Arc::clone(&session);
        // Seed the baseline pointer *before* spawning: whatever LATEST names
        // when serve() returns is the generation already being served, and
        // any later flip — even an immediate one — is a rollover.
        let initial = ktelebert::read_latest_pointer(&watch.dir).ok().flatten();
        std::thread::spawn(move || watch_latest(&control, &session, &watch, initial))
    });

    let idle_timeout_ms = cfg.idle_timeout_ms;
    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let control = Arc::clone(&control);
            let queue = Arc::clone(&queue);
            let session = Arc::clone(&session);
            std::thread::spawn(move || worker_loop(&control, &queue, &session, idle_timeout_ms))
        })
        .collect();

    Ok(ServeHandle { addr, control, queue, session, accept: Some(accept), watcher, workers })
}

/// Answers a connection rejected at the accept queue with one typed
/// `overloaded` line, best effort, then drops it. The peer gets a parseable
/// reason instead of a silent RST, and the write cannot pin the accept loop
/// past [`SHED_WRITE_TIMEOUT`].
fn shed_connection(mut stream: TcpStream, depth: u64, capacity: u64) {
    let _ = stream.set_write_timeout(Some(SHED_WRITE_TIMEOUT));
    let err = ServeError::Overloaded { depth, capacity };
    if let Ok(mut payload) = serde_json::to_string(&Response::failure(&err)) {
        payload.push('\n');
        let _ = stream.write_all(payload.as_bytes());
        let _ = stream.flush();
    }
}

/// Polls `watch.dir`'s `LATEST` pointer; when it names a new snapshot, loads
/// and validates the bundle off the serving path and installs it. Each
/// pointer value gets exactly one load attempt — a corrupt candidate is
/// recorded and skipped, and the old bundle keeps serving.
fn watch_latest(
    control: &Control,
    session: &InferenceSession,
    watch: &WatchConfig,
    mut last: Option<String>,
) {
    let interval_ms = watch.interval_ms.max(50);
    while !control.is_stopping() {
        // Chunked sleep so shutdown latency is ~50ms, not interval_ms.
        let mut slept = 0u64;
        while slept < interval_ms && !control.is_stopping() {
            std::thread::sleep(Duration::from_millis(50));
            slept += 50;
        }
        if control.is_stopping() {
            break;
        }
        let current = match ktelebert::read_latest_pointer(&watch.dir) {
            Ok(pointer) => pointer,
            Err(_) => continue, // transient read error: re-poll
        };
        if current == last {
            continue;
        }
        if let Some(name) = &current {
            let path = watch.dir.join(name);
            match reload_bundle(session, &path) {
                Ok(version) => session.flight_note(
                    "serve.rollover",
                    None,
                    format!("watch installed {name} as version {version}"),
                ),
                Err(e) => session.record_error(
                    error_code(&e),
                    None,
                    &format!("watch: candidate {name} rejected, old bundle keeps serving: {e}"),
                ),
            }
        }
        last = current;
    }
}

/// Reads, validates, and installs a bundle file. Validation happens entirely
/// before [`InferenceSession::install`], so a torn or corrupt candidate never
/// touches the serving model.
fn reload_bundle(session: &InferenceSession, path: &Path) -> Result<u64, ServeError> {
    let json = std::fs::read_to_string(path)?;
    let bundle = ktelebert::load_bundle(&json)?;
    Ok(session.install(bundle))
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session (for stats or metric publication).
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Blocks until a client requests shutdown (or [`shutdown`](Self::shutdown)
    /// is called from another thread).
    pub fn wait(&self) {
        let mut stopped = self.control.stopped.lock().unwrap_or_else(|e| e.into_inner());
        while !*stopped {
            stopped = self.control.cv.wait(stopped).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting, drains workers, and returns final serving stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.session.stats()
    }

    fn stop_and_join(&mut self) {
        self.control.request_stop();
        // Unblock the accept loop with a throwaway connection; `incoming()`
        // has no other wakeup mechanism in std.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
        self.queue.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

fn worker_loop(
    control: &Control,
    queue: &ConnQueue,
    session: &InferenceSession,
    idle_timeout_ms: u64,
) {
    loop {
        let stream = {
            let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = conns.pop_front() {
                    break stream;
                }
                if control.is_stopping() {
                    return;
                }
                let (guard, _timeout) =
                    queue.wake.wait_timeout(conns, READ_POLL).unwrap_or_else(|e| e.into_inner());
                conns = guard;
            }
        };
        serve_connection(control, session, stream, idle_timeout_ms);
        if control.is_stopping() {
            return;
        }
    }
}

/// Answers one connection until the peer disconnects, a transport error
/// occurs, the idle budget runs out, or shutdown is requested.
///
/// `read_line` appends to its buffer and keeps partially read bytes across a
/// timeout, so a frame arriving slowly over several read polls is assembled
/// correctly: the buffer is cleared only after a *complete* line is handled.
/// The idle counter, by contrast, resets only on a complete frame — a peer
/// trickling bytes without ever finishing a line (slow loris) still burns
/// through its idle budget and is cut.
fn serve_connection(
    control: &Control,
    session: &InferenceSession,
    stream: TcpStream,
    idle_timeout_ms: u64,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let poll_ms = READ_POLL.as_millis() as u64;
    let idle_limit =
        if idle_timeout_ms == 0 { u64::MAX } else { idle_timeout_ms.div_ceil(poll_ms).max(1) };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    let mut line = String::new();
    let mut idle_polls = 0u64;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed cleanly between frames
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Partial bytes (if any) stay in `line` for the next poll.
                if control.is_stopping() {
                    return;
                }
                idle_polls += 1;
                if idle_polls >= idle_limit {
                    session.flight_note(
                        "conn.idle_timeout",
                        None,
                        format!("idle budget {idle_timeout_ms}ms spent, partial={}", line.len()),
                    );
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        idle_polls = 0;
        // Ok(n > 0) without a trailing newline means EOF landed mid-frame
        // (torn connection). The fragment is an incomplete request, not a
        // malformed one — a prefix could even parse as a *different* valid
        // request — so it gets no reply, just a note and a clean close.
        if !line.ends_with('\n') {
            session.flight_note("conn.torn", None, format!("eof mid-frame after {}B", line.len()));
            return;
        }
        if !line.trim().is_empty() {
            let (response, stop_after) = handle_line(session, &line);
            let write_start = now_ns();
            let mut payload = match serde_json::to_string(&response) {
                Ok(json) => json,
                Err(_) => return,
            };
            payload.push('\n');
            if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
            session.record_write_us(now_ns().saturating_sub(write_start) / 1_000);
            if stop_after {
                control.request_stop();
                return;
            }
        }
        line.clear();
        if control.is_stopping() {
            return;
        }
    }
}

/// Parses and executes one request line. Returns the response and whether
/// the server should stop after sending it.
///
/// Every line is processed under a request id — the client's `id` when it
/// sent one, otherwise the next id from the session's counter — and the
/// response echoes it, so wire traffic is joinable against flight-recorder
/// notes and phase histograms.
fn handle_line(session: &InferenceSession, line: &str) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            let rid = session.next_request_id();
            let err = ServeError::Protocol(format!("unparseable request: {e:?}"));
            session.record_error(error_code(&err), Some(rid), "request line did not parse");
            return (Response::failure(&err).with_request_id(rid), false);
        }
    };
    let rid = request.id.unwrap_or_else(|| session.next_request_id());
    let protocol_error = |err: ServeError| {
        session.record_error(error_code(&err), Some(rid), &err.to_string());
        (Response::failure(&err).with_request_id(rid), false)
    };
    match request.op.as_str() {
        "ping" => (Response::ack().with_request_id(rid), false),
        "stats" => (Response::stats(session.stats()).with_request_id(rid), false),
        "metrics" => match request.format.as_deref() {
            None | Some("json") => {
                (Response::metrics(session.metrics_snapshot()).with_request_id(rid), false)
            }
            Some("prometheus") => {
                (Response::prometheus(session.prometheus_text()).with_request_id(rid), false)
            }
            Some(other) => protocol_error(ServeError::Protocol(format!(
                "unknown metrics format `{other}` (expected `json` or `prometheus`)"
            ))),
        },
        "shutdown" => (Response::ack().with_request_id(rid), true),
        "reload" => match &request.ckpt {
            Some(path) => match reload_bundle(session, Path::new(path)) {
                Ok(version) => (Response::reloaded(version).with_request_id(rid), false),
                Err(e) => {
                    session.record_error(
                        error_code(&e),
                        Some(rid),
                        &format!("reload of {path} failed, old bundle keeps serving: {e}"),
                    );
                    (Response::failure(&e).with_request_id(rid), false)
                }
            },
            None => {
                protocol_error(ServeError::Protocol("reload requires a `ckpt` bundle path".into()))
            }
        },
        "encode" => match request.texts {
            Some(texts) => {
                match session.encode_many_with_deadline(&texts, rid, request.deadline_us) {
                    Ok(embs) => (Response::embeddings(embs).with_request_id(rid), false),
                    // The session already noted (and possibly flight-dumped)
                    // typed encode errors under this id.
                    Err(e) => (Response::failure(&e).with_request_id(rid), false),
                }
            }
            None => protocol_error(ServeError::Protocol("encode requires a `texts` array".into())),
        },
        other => protocol_error(ServeError::Protocol(format!("unknown op `{other}`"))),
    }
}

/// Client-side resilience knobs: socket timeouts and a bounded,
/// deterministic retry policy for idempotent operations.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Socket read timeout, ms (0 disables; an unanswered call then blocks).
    pub read_timeout_ms: u64,
    /// Socket write timeout, ms (0 disables).
    pub write_timeout_ms: u64,
    /// Retries after the first attempt, for idempotent operations only.
    pub retries: u32,
    /// Base backoff delay, ms; attempt `k` sleeps `base * 2^(k-1)` plus
    /// seeded jitter in `[0, base)`.
    pub backoff_base_ms: u64,
    /// Seed for the deterministic jitter (splitmix64 of `seed ^ attempt`).
    pub backoff_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            retries: 3,
            backoff_base_ms: 50,
            backoff_seed: 0x7E1E_5EED,
        }
    }
}

/// splitmix64: the jitter source for retry backoff. Deterministic and
/// dependency-free, so two clients with the same seed replay byte-identical
/// retry schedules — which is what the chaos suite asserts.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay before retry `attempt` (1-based): exponential in the attempt
/// number with deterministic seeded jitter. Pure — given the same config and
/// attempt, the same delay.
pub fn backoff_delay_ms(cfg: &ClientConfig, attempt: u32) -> u64 {
    let base = cfg.backoff_base_ms.max(1);
    let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(16));
    exp + splitmix64(cfg.backoff_seed ^ u64::from(attempt)) % base
}

/// A blocking NDJSON client for a serve endpoint, with socket timeouts and
/// bounded retry (idempotent operations only — `shutdown` and `reload` are
/// never retried).
pub struct ServeClient {
    addr: String,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    retries_used: u64,
}

impl ServeClient {
    /// Connects to a serve endpoint with the default [`ClientConfig`].
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeout and retry configuration.
    pub fn connect_with(addr: &str, cfg: ClientConfig) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        if cfg.read_timeout_ms > 0 {
            stream.set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)))?;
        }
        if cfg.write_timeout_ms > 0 {
            stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)))?;
        }
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { addr: addr.to_string(), cfg, reader, writer: stream, retries_used: 0 })
    }

    /// Retries consumed by this client so far (for tests and diagnostics).
    pub fn retries_used(&self) -> u64 {
        self.retries_used
    }

    /// Maps a socket error to the typed surface: an expired read/write
    /// timeout becomes [`ServeError::Timeout`], everything else stays `Io`.
    fn io_err(e: std::io::Error) -> ServeError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ServeError::Timeout,
            _ => ServeError::Io(e),
        }
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut payload = serde_json::to_string(request)
            .map_err(|e| ServeError::Protocol(format!("request serialization failed: {e:?}")))?;
        payload.push('\n');
        self.writer.write_all(payload.as_bytes()).map_err(Self::io_err)?;
        self.writer.flush().map_err(Self::io_err)?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).map_err(Self::io_err)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("unparseable response: {e:?}")))
    }

    /// One attempt, no retry: used by the non-idempotent operations.
    fn expect_ok(&mut self, request: &Request) -> Result<Response, ServeError> {
        let response = self.call(request)?;
        match response.to_error() {
            Some(err) => Err(err),
            None => Ok(response),
        }
    }

    /// Retrying wrapper for idempotent operations. Retries fire only on a
    /// typed `overloaded` reply or on transport-level failures (timeout, io)
    /// — a served error like `empty_batch` would fail identically again and
    /// is returned immediately. Backoff is deterministic ([`backoff_delay_ms`]);
    /// after a transport failure the client reconnects before retrying.
    fn expect_ok_retrying(
        &mut self,
        request: &Request,
        idempotent: bool,
    ) -> Result<Response, ServeError> {
        let mut attempt: u32 = 0;
        loop {
            let (err, transport) = match self.call(request) {
                Ok(response) => match response.to_error() {
                    None => return Ok(response),
                    Some(err) => (err, false),
                },
                Err(err) => (err, true),
            };
            let retryable = idempotent
                && attempt < self.cfg.retries
                && match &err {
                    ServeError::Overloaded { .. } => true,
                    ServeError::Io(_) | ServeError::Timeout => transport,
                    _ => false,
                };
            if !retryable {
                return Err(err);
            }
            attempt += 1;
            self.retries_used += 1;
            std::thread::sleep(Duration::from_millis(backoff_delay_ms(&self.cfg, attempt)));
            if transport {
                // The old socket may be dead or mid-frame; start clean.
                if let Ok(fresh) = Self::connect_with(&self.addr, self.cfg.clone()) {
                    self.reader = fresh.reader;
                    self.writer = fresh.writer;
                }
            }
        }
    }

    /// Round-trip health check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.expect_ok_retrying(&Request::bare("ping"), true).map(|_| ())
    }

    /// Encodes sentences remotely; one embedding per sentence.
    pub fn encode(&mut self, texts: Vec<String>) -> Result<Vec<Vec<f32>>, ServeError> {
        let response = self.expect_ok_retrying(&Request::encode(texts), true)?;
        response
            .embeddings
            .ok_or_else(|| ServeError::Protocol("encode response without embeddings".into()))
    }

    /// Encodes sentences under an explicit queueing deadline (µs): the
    /// server expires the request with a typed `deadline_exceeded` if it
    /// cannot start serving it in time.
    pub fn encode_with_deadline(
        &mut self,
        texts: Vec<String>,
        deadline_us: u64,
    ) -> Result<Vec<Vec<f32>>, ServeError> {
        let request = Request::encode_with_deadline(texts, deadline_us);
        let response = self.expect_ok_retrying(&request, true)?;
        response
            .embeddings
            .ok_or_else(|| ServeError::Protocol("encode response without embeddings".into()))
    }

    /// Encodes sentences under a client-chosen request id; returns the
    /// embeddings and the id the server echoed back.
    pub fn encode_with_id(
        &mut self,
        texts: Vec<String>,
        id: u64,
    ) -> Result<(Vec<Vec<f32>>, Option<u64>), ServeError> {
        let response = self.expect_ok_retrying(&Request::encode_with_id(texts, id), true)?;
        let embs = response
            .embeddings
            .ok_or_else(|| ServeError::Protocol("encode response without embeddings".into()))?;
        Ok((embs, response.request_id))
    }

    /// Fetches server statistics.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let response = self.expect_ok_retrying(&Request::bare("stats"), true)?;
        response.stats.ok_or_else(|| ServeError::Protocol("stats response without stats".into()))
    }

    /// Fetches the live telemetry snapshot.
    pub fn metrics(&mut self) -> Result<crate::metrics::MetricsSnapshot, ServeError> {
        let response = self.expect_ok_retrying(&Request::bare("metrics"), true)?;
        response
            .metrics
            .ok_or_else(|| ServeError::Protocol("metrics response without snapshot".into()))
    }

    /// Fetches the metrics in Prometheus text exposition format.
    pub fn metrics_prometheus(&mut self) -> Result<String, ServeError> {
        let response = self.expect_ok_retrying(&Request::metrics_prometheus(), true)?;
        response
            .prometheus
            .ok_or_else(|| ServeError::Protocol("metrics response without prometheus text".into()))
    }

    /// Asks the server to hot-swap its serving bundle from a bundle file;
    /// returns the new model version. Never retried: a reload is not
    /// idempotent (each success bumps the version).
    pub fn reload(&mut self, ckpt: &str) -> Result<u64, ServeError> {
        let response = self.expect_ok(&Request::reload(ckpt))?;
        response
            .version
            .ok_or_else(|| ServeError::Protocol("reload response without a version".into()))
    }

    /// Asks the server to shut down (acknowledged before it stops). Never
    /// retried.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.expect_ok(&Request::bare("shutdown")).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    fn local_cfg() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            session: SessionConfig {
                max_batch: 8,
                max_wait_us: 500,
                cache_capacity: 64,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn tcp_roundtrip_matches_direct_encode() {
        let bundle = tiny_bundle(10);
        let texts = vec!["alarm on amf".to_string(), "link down".to_string()];
        let direct = bundle.encode_batch(&texts).expect("direct");

        let handle = serve(tiny_bundle(10), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        client.ping().expect("ping");
        let remote = client.encode(texts).expect("encode");
        for (a, b) in direct.iter().flatten().zip(remote.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire result must be bit-identical");
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.requests, 2);
        handle.shutdown();
    }

    #[test]
    fn protocol_errors_are_typed_not_fatal() {
        let handle = serve(tiny_bundle(11), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        match client.encode(vec![]) {
            Err(ServeError::Encode(ktelebert::EncodeError::EmptyBatch)) => {}
            other => panic!("expected typed EmptyBatch over the wire, got {other:?}"),
        }
        // A served (non-transport) error must not burn retries.
        assert_eq!(client.retries_used(), 0);
        // The connection survives the error.
        client.ping().expect("ping after error");
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_op_stops_the_server() {
        let handle = serve(tiny_bundle(12), &local_cfg()).expect("serve");
        let addr = handle.addr().to_string();
        let mut client = ServeClient::connect(&addr).expect("connect");
        client.shutdown().expect("shutdown ack");
        handle.wait(); // returns because the client requested shutdown
        let stats = handle.shutdown();
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn concurrent_connections_are_batched_together() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            session: SessionConfig {
                max_batch: 16,
                max_wait_us: 20_000,
                cache_capacity: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let handle = serve(tiny_bundle(13), &cfg).expect("serve");
        let addr = handle.addr().to_string();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = ServeClient::connect(&addr).expect("connect");
                    client
                        .encode(vec![format!("fault {t} alpha"), format!("fault {t} beta")])
                        .expect("encode")
                })
            })
            .collect();
        for t in threads {
            let embs = t.join().expect("join");
            assert_eq!(embs.len(), 2);
        }
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 8);
        assert!(stats.batches < 8, "requests from different connections must coalesce: {stats:?}");
    }

    #[test]
    fn metrics_op_serves_json_and_prometheus() {
        let handle = serve(tiny_bundle(14), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        client.encode(vec!["warm up the histograms".into()]).expect("encode");
        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.stats.requests, 1);
        assert!(snap.window_secs > 0);
        assert_eq!(snap.stats.latency_window.request_latency.count, 1);
        assert_eq!(snap.model_version, 1);
        let text = client.metrics_prometheus().expect("prometheus");
        assert!(text.contains("serve_requests"), "{text}");
        assert!(text.contains("quantile=\"0.999\""), "{text}");
        handle.shutdown();
    }

    #[test]
    fn responses_echo_the_client_request_id() {
        let handle = serve(tiny_bundle(15), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        let (embs, rid) = client.encode_with_id(vec!["id me".into()], 9001).expect("encode");
        assert_eq!(embs.len(), 1);
        assert_eq!(rid, Some(9001), "server must echo the client's id");
        handle.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_exponential_with_bounded_jitter() {
        let cfg = ClientConfig::default();
        for attempt in 1..=5u32 {
            let a = backoff_delay_ms(&cfg, attempt);
            let b = backoff_delay_ms(&cfg, attempt);
            assert_eq!(a, b, "same seed + attempt must replay the same delay");
            let exp = cfg.backoff_base_ms * (1 << (attempt - 1));
            assert!(a >= exp && a < exp + cfg.backoff_base_ms, "attempt {attempt}: {a} vs {exp}");
        }
        let other = ClientConfig { backoff_seed: 99, ..ClientConfig::default() };
        assert_ne!(
            backoff_delay_ms(&cfg, 1),
            backoff_delay_ms(&other, 1),
            "different seeds should jitter differently"
        );
    }

    #[test]
    fn client_read_timeout_is_typed_not_a_hang() {
        // A listener that accepts and never answers.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let cfg = ClientConfig { read_timeout_ms: 150, retries: 0, ..ClientConfig::default() };
        let mut client = ServeClient::connect_with(&addr, cfg).expect("connect");
        match client.ping() {
            Err(ServeError::Timeout) => {}
            other => panic!("expected ServeError::Timeout, got {other:?}"),
        }
        drop(client);
        let _ = hold.join();
    }

    #[test]
    fn reload_op_swaps_the_model_over_the_wire() {
        let dir = std::env::temp_dir().join(format!("tele-serve-reload-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let next = dir.join("bundle_v2.json");
        std::fs::write(&next, ktelebert::save_bundle(&tiny_bundle(21))).expect("write bundle");

        let handle = serve(tiny_bundle(20), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        let text = "alarm on amf".to_string();
        let before = client.encode(vec![text.clone()]).expect("encode v1");

        // A corrupt candidate is rejected with a typed error; v1 keeps serving.
        let bad = dir.join("corrupt.json");
        std::fs::write(&bad, "{ not a bundle").expect("write corrupt");
        match client.reload(&bad.display().to_string()) {
            Err(ServeError::Checkpoint(_)) => {}
            other => panic!("expected typed Checkpoint error, got {other:?}"),
        }
        let still = client.encode(vec![text.clone()]).expect("encode after bad reload");
        assert_eq!(before[0][0].to_bits(), still[0][0].to_bits(), "old bundle must keep serving");

        let version = client.reload(&next.display().to_string()).expect("reload v2");
        assert_eq!(version, 2);
        let after = client.encode(vec![text.clone()]).expect("encode v2");
        let cold = tiny_bundle(21).encode_batch(&[text]).expect("cold")[0].clone();
        assert_ne!(before[0][0].to_bits(), after[0][0].to_bits(), "swap must change bits");
        for (a, b) in after[0].iter().zip(cold.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "served bits must match the new bundle");
        }
        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.model_version, 2);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn accept_queue_overflow_sheds_with_a_typed_line() {
        let cfg = ServerConfig { workers: 1, accept_queue: 1, ..local_cfg() };
        let handle = serve(tiny_bundle(22), &cfg).expect("serve");
        let addr = handle.addr().to_string();
        // c1 occupies the single worker (a completed ping proves a worker
        // owns it); c2 parks in the accept queue; c3 must be shed.
        let mut c1 = ServeClient::connect(&addr).expect("c1");
        c1.ping().expect("ping c1");
        let _c2 = TcpStream::connect(&addr).expect("c2");
        std::thread::sleep(Duration::from_millis(100));
        let c3 = TcpStream::connect(&addr).expect("c3");
        let mut line = String::new();
        BufReader::new(c3).read_line(&mut line).expect("read shed line");
        let response: Response = serde_json::from_str(line.trim()).expect("parse shed line");
        match response.to_error() {
            Some(ServeError::Overloaded { .. }) => {}
            other => panic!("expected typed overloaded shed, got {other:?}"),
        }
        let stats = handle.shutdown();
        assert!(stats.shed >= 1, "the shed connection must be counted: {stats:?}");
    }

    #[test]
    fn watcher_installs_newly_pointed_bundles() {
        let dir = std::env::temp_dir().join(format!("tele-serve-watch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("b2.json"), ktelebert::save_bundle(&tiny_bundle(31)))
            .expect("write bundle");

        let cfg = ServerConfig {
            watch: Some(WatchConfig { dir: dir.clone(), interval_ms: 50 }),
            ..local_cfg()
        };
        let handle = serve(tiny_bundle(30), &cfg).expect("serve");
        assert_eq!(handle.session().model_version(), 1);
        // Atomic pointer flip, as the checkpoint store would do it.
        std::fs::write(dir.join(ktelebert::LATEST_POINTER), "b2.json\n").expect("flip pointer");
        let deadline = 100u32;
        let mut ticks = 0u32;
        while handle.session().model_version() < 2 && ticks < deadline {
            std::thread::sleep(Duration::from_millis(50));
            ticks += 1;
        }
        assert_eq!(handle.session().model_version(), 2, "watcher must install the new bundle");
        let stats = handle.shutdown();
        assert_eq!(stats.rollovers, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
