//! The TCP serving front-end: `std::net::TcpListener`, a hand-rolled worker
//! pool, and newline-delimited JSON framing (see [`crate::protocol`]).
//!
//! Topology: one accept thread pushes connections onto a shared queue; N
//! worker threads each own one connection at a time and answer its requests
//! through the shared [`InferenceSession`] — so batching happens *across*
//! connections, not per connection. Reads carry a short timeout so workers
//! re-check the shutdown flag even while a client sits idle, which bounds
//! shutdown latency without a dedicated reaper.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ktelebert::TeleBert;
use tele_trace::now_ns;

use crate::error::ServeError;
use crate::metrics::ServeStats;
use crate::protocol::{error_code, Request, Response};
use crate::session::{InferenceSession, SessionConfig};

/// How long a worker blocks on a socket read before re-checking shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (the handle reports it).
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Batching and cache knobs for the shared session.
    pub session: SessionConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7077".into(),
            workers: 4,
            session: SessionConfig::default(),
        }
    }
}

struct ConnQueue {
    conns: Mutex<VecDeque<TcpStream>>,
    wake: Condvar,
}

struct Control {
    stop: AtomicBool,
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl Control {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let mut stopped = self.stopped.lock().unwrap_or_else(|e| e.into_inner());
        *stopped = true;
        self.cv.notify_all();
    }

    fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running serve endpoint. Dropping the handle shuts the server down.
pub struct ServeHandle {
    addr: SocketAddr,
    control: Arc<Control>,
    queue: Arc<ConnQueue>,
    session: Arc<InferenceSession>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Starts serving `bundle` per `cfg`. Returns once the listener is bound and
/// the worker pool is up; serving proceeds on background threads.
pub fn serve(bundle: TeleBert, cfg: &ServerConfig) -> Result<ServeHandle, ServeError> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let session = Arc::new(InferenceSession::new(bundle, cfg.session.clone()));
    let control = Arc::new(Control {
        stop: AtomicBool::new(false),
        stopped: Mutex::new(false),
        cv: Condvar::new(),
    });
    let queue = Arc::new(ConnQueue { conns: Mutex::new(VecDeque::new()), wake: Condvar::new() });

    let accept = {
        let control = Arc::clone(&control);
        let queue = Arc::clone(&queue);
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            let mut conn_seq = 0u64;
            for stream in listener.incoming() {
                if control.is_stopping() {
                    break;
                }
                if let Ok(stream) = stream {
                    conn_seq += 1;
                    let peer = stream
                        .peer_addr()
                        .map(|a| a.to_string())
                        .unwrap_or_else(|_| "unknown".into());
                    session.flight_note(
                        "conn.accept",
                        None,
                        format!("conn={conn_seq} peer={peer}"),
                    );
                    let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
                    conns.push_back(stream);
                    drop(conns);
                    queue.wake.notify_one();
                }
            }
        })
    };

    let workers = (0..cfg.workers.max(1))
        .map(|_| {
            let control = Arc::clone(&control);
            let queue = Arc::clone(&queue);
            let session = Arc::clone(&session);
            std::thread::spawn(move || worker_loop(&control, &queue, &session))
        })
        .collect();

    Ok(ServeHandle { addr, control, queue, session, accept: Some(accept), workers })
}

impl ServeHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session (for stats or metric publication).
    pub fn session(&self) -> &Arc<InferenceSession> {
        &self.session
    }

    /// Blocks until a client requests shutdown (or [`shutdown`](Self::shutdown)
    /// is called from another thread).
    pub fn wait(&self) {
        let mut stopped = self.control.stopped.lock().unwrap_or_else(|e| e.into_inner());
        while !*stopped {
            stopped = self.control.cv.wait(stopped).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops accepting, drains workers, and returns final serving stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.session.stats()
    }

    fn stop_and_join(&mut self) {
        self.control.request_stop();
        // Unblock the accept loop with a throwaway connection; `incoming()`
        // has no other wakeup mechanism in std.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.queue.wake.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

fn worker_loop(control: &Control, queue: &ConnQueue, session: &InferenceSession) {
    loop {
        let stream = {
            let mut conns = queue.conns.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = conns.pop_front() {
                    break stream;
                }
                if control.is_stopping() {
                    return;
                }
                let (guard, _timeout) =
                    queue.wake.wait_timeout(conns, READ_POLL).unwrap_or_else(|e| e.into_inner());
                conns = guard;
            }
        };
        serve_connection(control, session, stream);
        if control.is_stopping() {
            return;
        }
    }
}

/// Answers one connection until the peer disconnects, a transport error
/// occurs, or shutdown is requested.
fn serve_connection(control: &Control, session: &InferenceSession, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if control.is_stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, stop_after) = handle_line(session, &line);
        let write_start = now_ns();
        let mut payload = match serde_json::to_string(&response) {
            Ok(json) => json,
            Err(_) => return,
        };
        payload.push('\n');
        if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
        session.record_write_us(now_ns().saturating_sub(write_start) / 1_000);
        if stop_after {
            control.request_stop();
            return;
        }
        if control.is_stopping() {
            return;
        }
    }
}

/// Parses and executes one request line. Returns the response and whether
/// the server should stop after sending it.
///
/// Every line is processed under a request id — the client's `id` when it
/// sent one, otherwise the next id from the session's counter — and the
/// response echoes it, so wire traffic is joinable against flight-recorder
/// notes and phase histograms.
fn handle_line(session: &InferenceSession, line: &str) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            let rid = session.next_request_id();
            let err = ServeError::Protocol(format!("unparseable request: {e:?}"));
            session.record_error(error_code(&err), Some(rid), "request line did not parse");
            return (Response::failure(&err).with_request_id(rid), false);
        }
    };
    let rid = request.id.unwrap_or_else(|| session.next_request_id());
    let protocol_error = |err: ServeError| {
        session.record_error(error_code(&err), Some(rid), &err.to_string());
        (Response::failure(&err).with_request_id(rid), false)
    };
    match request.op.as_str() {
        "ping" => (Response::ack().with_request_id(rid), false),
        "stats" => (Response::stats(session.stats()).with_request_id(rid), false),
        "metrics" => match request.format.as_deref() {
            None | Some("json") => {
                (Response::metrics(session.metrics_snapshot()).with_request_id(rid), false)
            }
            Some("prometheus") => {
                (Response::prometheus(session.prometheus_text()).with_request_id(rid), false)
            }
            Some(other) => protocol_error(ServeError::Protocol(format!(
                "unknown metrics format `{other}` (expected `json` or `prometheus`)"
            ))),
        },
        "shutdown" => (Response::ack().with_request_id(rid), true),
        "encode" => match request.texts {
            Some(texts) => match session.encode_many_with_id(&texts, rid) {
                Ok(embs) => (Response::embeddings(embs).with_request_id(rid), false),
                // The session already noted (and possibly flight-dumped)
                // typed encode errors under this id.
                Err(e) => (Response::failure(&e).with_request_id(rid), false),
            },
            None => protocol_error(ServeError::Protocol("encode requires a `texts` array".into())),
        },
        other => protocol_error(ServeError::Protocol(format!("unknown op `{other}`"))),
    }
}

/// A blocking NDJSON client for a serve endpoint.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connects to a serve endpoint.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(ServeClient { reader, writer: stream })
    }

    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let mut payload = serde_json::to_string(request)
            .map_err(|e| ServeError::Protocol(format!("request serialization failed: {e:?}")))?;
        payload.push('\n');
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServeError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("unparseable response: {e:?}")))
    }

    fn expect_ok(&mut self, request: &Request) -> Result<Response, ServeError> {
        let response = self.call(request)?;
        match response.to_error() {
            Some(err) => Err(err),
            None => Ok(response),
        }
    }

    /// Round-trip health check.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        self.expect_ok(&Request::bare("ping")).map(|_| ())
    }

    /// Encodes sentences remotely; one embedding per sentence.
    pub fn encode(&mut self, texts: Vec<String>) -> Result<Vec<Vec<f32>>, ServeError> {
        let response = self.expect_ok(&Request::encode(texts))?;
        response
            .embeddings
            .ok_or_else(|| ServeError::Protocol("encode response without embeddings".into()))
    }

    /// Encodes sentences under a client-chosen request id; returns the
    /// embeddings and the id the server echoed back.
    pub fn encode_with_id(
        &mut self,
        texts: Vec<String>,
        id: u64,
    ) -> Result<(Vec<Vec<f32>>, Option<u64>), ServeError> {
        let response = self.expect_ok(&Request::encode_with_id(texts, id))?;
        let embs = response
            .embeddings
            .ok_or_else(|| ServeError::Protocol("encode response without embeddings".into()))?;
        Ok((embs, response.request_id))
    }

    /// Fetches server statistics.
    pub fn stats(&mut self) -> Result<ServeStats, ServeError> {
        let response = self.expect_ok(&Request::bare("stats"))?;
        response.stats.ok_or_else(|| ServeError::Protocol("stats response without stats".into()))
    }

    /// Fetches the live telemetry snapshot.
    pub fn metrics(&mut self) -> Result<crate::metrics::MetricsSnapshot, ServeError> {
        let response = self.expect_ok(&Request::bare("metrics"))?;
        response
            .metrics
            .ok_or_else(|| ServeError::Protocol("metrics response without snapshot".into()))
    }

    /// Fetches the metrics in Prometheus text exposition format.
    pub fn metrics_prometheus(&mut self) -> Result<String, ServeError> {
        let response = self.expect_ok(&Request::metrics_prometheus())?;
        response
            .prometheus
            .ok_or_else(|| ServeError::Protocol("metrics response without prometheus text".into()))
    }

    /// Asks the server to shut down (acknowledged before it stops).
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.expect_ok(&Request::bare("shutdown")).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    fn local_cfg() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            session: SessionConfig {
                max_batch: 8,
                max_wait_us: 500,
                cache_capacity: 64,
                ..Default::default()
            },
        }
    }

    #[test]
    fn tcp_roundtrip_matches_direct_encode() {
        let bundle = tiny_bundle(10);
        let texts = vec!["alarm on amf".to_string(), "link down".to_string()];
        let direct = bundle.encode_batch(&texts).expect("direct");

        let handle = serve(tiny_bundle(10), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        client.ping().expect("ping");
        let remote = client.encode(texts).expect("encode");
        for (a, b) in direct.iter().flatten().zip(remote.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire result must be bit-identical");
        }
        let stats = client.stats().expect("stats");
        assert_eq!(stats.requests, 2);
        handle.shutdown();
    }

    #[test]
    fn protocol_errors_are_typed_not_fatal() {
        let handle = serve(tiny_bundle(11), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        match client.encode(vec![]) {
            Err(ServeError::Encode(ktelebert::EncodeError::EmptyBatch)) => {}
            other => panic!("expected typed EmptyBatch over the wire, got {other:?}"),
        }
        // The connection survives the error.
        client.ping().expect("ping after error");
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_op_stops_the_server() {
        let handle = serve(tiny_bundle(12), &local_cfg()).expect("serve");
        let addr = handle.addr().to_string();
        let mut client = ServeClient::connect(&addr).expect("connect");
        client.shutdown().expect("shutdown ack");
        handle.wait(); // returns because the client requested shutdown
        let stats = handle.shutdown();
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn concurrent_connections_are_batched_together() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            session: SessionConfig {
                max_batch: 16,
                max_wait_us: 20_000,
                cache_capacity: 0,
                ..Default::default()
            },
        };
        let handle = serve(tiny_bundle(13), &cfg).expect("serve");
        let addr = handle.addr().to_string();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut client = ServeClient::connect(&addr).expect("connect");
                    client
                        .encode(vec![format!("fault {t} alpha"), format!("fault {t} beta")])
                        .expect("encode")
                })
            })
            .collect();
        for t in threads {
            let embs = t.join().expect("join");
            assert_eq!(embs.len(), 2);
        }
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 8);
        assert!(stats.batches < 8, "requests from different connections must coalesce: {stats:?}");
    }

    #[test]
    fn metrics_op_serves_json_and_prometheus() {
        let handle = serve(tiny_bundle(14), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        client.encode(vec!["warm up the histograms".into()]).expect("encode");
        let snap = client.metrics().expect("metrics");
        assert_eq!(snap.stats.requests, 1);
        assert!(snap.window_secs > 0);
        assert_eq!(snap.stats.latency_window.request_latency.count, 1);
        let text = client.metrics_prometheus().expect("prometheus");
        assert!(text.contains("serve_requests"), "{text}");
        assert!(text.contains("quantile=\"0.999\""), "{text}");
        handle.shutdown();
    }

    #[test]
    fn responses_echo_the_client_request_id() {
        let handle = serve(tiny_bundle(15), &local_cfg()).expect("serve");
        let mut client = ServeClient::connect(&handle.addr().to_string()).expect("connect");
        let (embs, rid) = client.encode_with_id(vec!["id me".into()], 9001).expect("encode");
        assert_eq!(embs.len(), 1);
        assert_eq!(rid, Some(9001), "server must echo the client's id");
        handle.shutdown();
    }
}
