//! The wire protocol: newline-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line. Operations: `encode` (texts → embeddings), `stats`,
//! `metrics` (live telemetry snapshot, JSON or Prometheus text), `ping`, and
//! `shutdown`. Errors travel as a machine-readable `code` plus a
//! human-readable `error` message, so clients can reconstruct a typed
//! [`ServeError`] without parsing prose.
//!
//! Every response echoes a `request_id`: the client's `id` field when given,
//! otherwise one drawn from the server's counter — the same id the flight
//! recorder and phase histograms are tagged with, so a slow or failed wire
//! response is joinable against server-side telemetry.

use ktelebert::EncodeError;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;
use crate::metrics::{MetricsSnapshot, ServeStats};

/// A client request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Operation: `"encode"`, `"stats"`, `"metrics"`, `"ping"`, `"reload"`,
    /// or `"shutdown"`.
    pub op: String,
    /// Sentences to encode (required for `encode`, absent otherwise).
    pub texts: Option<Vec<String>>,
    /// Client-chosen request id; the server assigns one when absent.
    pub id: Option<u64>,
    /// Output format for `metrics`: absent/`"json"` for a structured
    /// snapshot, `"prometheus"` for text exposition.
    pub format: Option<String>,
    /// Per-request queueing deadline in microseconds (`encode` only); the
    /// server's configured default applies when absent.
    pub deadline_us: Option<u64>,
    /// Checkpoint bundle path for `reload`.
    pub ckpt: Option<String>,
}

impl Request {
    /// An `encode` request.
    pub fn encode(texts: Vec<String>) -> Self {
        Request { texts: Some(texts), ..Request::bare("encode") }
    }

    /// An `encode` request under a client-chosen id.
    pub fn encode_with_id(texts: Vec<String>, id: u64) -> Self {
        Request { id: Some(id), ..Request::encode(texts) }
    }

    /// An `encode` request carrying an explicit queueing deadline.
    pub fn encode_with_deadline(texts: Vec<String>, deadline_us: u64) -> Self {
        Request { deadline_us: Some(deadline_us), ..Request::encode(texts) }
    }

    /// A bare request with no payload (`stats` / `metrics` / `ping` /
    /// `shutdown`).
    pub fn bare(op: &str) -> Self {
        Request {
            op: op.into(),
            texts: None,
            id: None,
            format: None,
            deadline_us: None,
            ckpt: None,
        }
    }

    /// A `metrics` request asking for the Prometheus text exposition.
    pub fn metrics_prometheus() -> Self {
        Request { format: Some("prometheus".into()), ..Request::bare("metrics") }
    }

    /// A `reload` request pointing the server at a new checkpoint bundle.
    pub fn reload(ckpt: &str) -> Self {
        Request { ckpt: Some(ckpt.into()), ..Request::bare("reload") }
    }
}

/// A server response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// One embedding per requested sentence (`encode` only).
    pub embeddings: Option<Vec<Vec<f32>>>,
    /// Serving statistics (`stats` only).
    pub stats: Option<ServeStats>,
    /// Live telemetry snapshot (`metrics` only, JSON format).
    pub metrics: Option<MetricsSnapshot>,
    /// Prometheus text exposition (`metrics` only, `format: "prometheus"`).
    pub prometheus: Option<String>,
    /// Id the server processed this request under (echoed or assigned).
    pub request_id: Option<u64>,
    /// Model version now serving (`reload` only).
    pub version: Option<u64>,
    /// Machine-readable error code (set when `ok` is false).
    pub code: Option<String>,
    /// Human-readable error message (set when `ok` is false).
    pub error: Option<String>,
}

impl Response {
    /// A bare success response.
    pub fn ack() -> Self {
        Response {
            ok: true,
            embeddings: None,
            stats: None,
            metrics: None,
            prometheus: None,
            request_id: None,
            version: None,
            code: None,
            error: None,
        }
    }

    /// A successful `reload` response naming the model version now serving.
    pub fn reloaded(version: u64) -> Self {
        Response { version: Some(version), ..Response::ack() }
    }

    /// A successful `encode` response.
    pub fn embeddings(embs: Vec<Vec<f32>>) -> Self {
        Response { embeddings: Some(embs), ..Response::ack() }
    }

    /// A successful `stats` response.
    pub fn stats(stats: ServeStats) -> Self {
        Response { stats: Some(stats), ..Response::ack() }
    }

    /// A successful `metrics` response (JSON snapshot).
    pub fn metrics(snapshot: MetricsSnapshot) -> Self {
        Response { metrics: Some(snapshot), ..Response::ack() }
    }

    /// A successful `metrics` response (Prometheus text).
    pub fn prometheus(text: String) -> Self {
        Response { prometheus: Some(text), ..Response::ack() }
    }

    /// Tags the response with the id it was processed under.
    pub fn with_request_id(mut self, id: u64) -> Self {
        self.request_id = Some(id);
        self
    }

    /// An error response carrying the typed error's code and message.
    pub fn failure(err: &ServeError) -> Self {
        Response {
            ok: false,
            code: Some(error_code(err).into()),
            error: Some(err.to_string()),
            ..Response::ack()
        }
    }

    /// Reconstructs the typed error from an error response; `None` when the
    /// response is a success.
    pub fn to_error(&self) -> Option<ServeError> {
        if self.ok {
            return None;
        }
        let message = self.error.clone().unwrap_or_else(|| "unspecified server error".into());
        Some(match self.code.as_deref() {
            Some("empty_batch") => ServeError::Encode(EncodeError::EmptyBatch),
            Some("session_closed") => ServeError::SessionClosed,
            // Shed/expiry details travel in the message; the variant is what
            // retry logic branches on, so zeroed fields are fine client-side.
            // A checkpoint/io failure loses its inner structure crossing the
            // wire; the message keeps the detail, the variant keeps the type.
            Some("checkpoint") => {
                ServeError::Checkpoint(ktelebert::CheckpointError::Parse(message))
            }
            Some("io") => ServeError::Io(std::io::Error::other(message)),
            Some("overloaded") => ServeError::Overloaded { depth: 0, capacity: 0 },
            Some("deadline_exceeded") => {
                ServeError::DeadlineExceeded { waited_us: 0, deadline_us: 0 }
            }
            Some("timeout") => ServeError::Timeout,
            Some("internal") => ServeError::Internal(message),
            _ => ServeError::Protocol(message),
        })
    }
}

/// Stable wire code for each error variant.
pub fn error_code(err: &ServeError) -> &'static str {
    match err {
        ServeError::Encode(EncodeError::EmptyBatch) => "empty_batch",
        ServeError::Encode(EncodeError::RaggedRows { .. }) => "ragged_rows",
        ServeError::Encode(EncodeError::NonFinite { .. }) => "non_finite",
        ServeError::Checkpoint(_) => "checkpoint",
        ServeError::Io(_) => "io",
        ServeError::Protocol(_) => "protocol",
        ServeError::SessionClosed => "session_closed",
        ServeError::Overloaded { .. } => "overloaded",
        ServeError::DeadlineExceeded { .. } => "deadline_exceeded",
        ServeError::Timeout => "timeout",
        ServeError::Internal(_) => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::encode(vec!["a b".into(), "c".into()]);
        let json = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.op, "encode");
        assert_eq!(back.texts.as_deref(), Some(&["a b".to_string(), "c".to_string()][..]));
    }

    #[test]
    fn bare_request_tolerates_missing_texts() {
        let back: Request = serde_json::from_str(r#"{"op":"ping"}"#).expect("deserialize");
        assert_eq!(back.op, "ping");
        assert!(back.texts.is_none());
    }

    #[test]
    fn embeddings_roundtrip_bit_exactly() {
        let embs = vec![vec![0.1f32, -2.5e-8, f32::MIN_POSITIVE], vec![1.0, 2.0, 3.0]];
        let json = serde_json::to_string(&Response::embeddings(embs.clone())).expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        let got = back.embeddings.expect("embeddings");
        for (a, b) in embs.iter().flatten().zip(got.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "wire transport must preserve f32 bits");
        }
    }

    #[test]
    fn failure_roundtrips_to_typed_error() {
        let json = serde_json::to_string(&Response::failure(&ServeError::SessionClosed))
            .expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        assert!(matches!(back.to_error(), Some(ServeError::SessionClosed)));

        let json =
            serde_json::to_string(&Response::failure(&ServeError::Encode(EncodeError::EmptyBatch)))
                .expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        assert!(matches!(back.to_error(), Some(ServeError::Encode(EncodeError::EmptyBatch))));

        assert!(Response::ack().to_error().is_none());
    }

    #[test]
    fn request_id_rides_both_directions() {
        let req = Request::encode_with_id(vec!["x".into()], 42);
        let json = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.id, Some(42));

        let resp = Response::ack().with_request_id(42);
        let json = serde_json::to_string(&resp).expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.request_id, Some(42));
    }

    #[test]
    fn old_style_requests_still_parse() {
        // Pre-telemetry clients send neither `id` nor `format`, and
        // pre-overload clients send neither `deadline_us` nor `ckpt`.
        let back: Request =
            serde_json::from_str(r#"{"op":"encode","texts":["a"]}"#).expect("deserialize");
        assert!(back.id.is_none() && back.format.is_none());
        assert!(back.deadline_us.is_none() && back.ckpt.is_none());
    }

    #[test]
    fn overload_errors_roundtrip_to_typed_errors() {
        for (err, wants) in [
            (ServeError::Overloaded { depth: 9, capacity: 8 }, "overloaded"),
            (
                ServeError::DeadlineExceeded { waited_us: 700, deadline_us: 500 },
                "deadline_exceeded",
            ),
            (ServeError::Timeout, "timeout"),
            (ServeError::Internal("worker panic".into()), "internal"),
        ] {
            let json = serde_json::to_string(&Response::failure(&err)).expect("serialize");
            let back: Response = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back.code.as_deref(), Some(wants));
            let typed = back.to_error().expect("typed error");
            assert_eq!(error_code(&typed), wants, "{typed:?}");
        }
    }

    #[test]
    fn deadline_and_reload_requests_roundtrip() {
        let req = Request::encode_with_deadline(vec!["x".into()], 2_500);
        let json = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.deadline_us, Some(2_500));

        let req = Request::reload("results/bundle_v2.json");
        let json = serde_json::to_string(&req).expect("serialize");
        let back: Request = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.op, "reload");
        assert_eq!(back.ckpt.as_deref(), Some("results/bundle_v2.json"));

        let json = serde_json::to_string(&Response::reloaded(2)).expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        assert!(back.ok);
        assert_eq!(back.version, Some(2));
    }

    #[test]
    fn metrics_response_roundtrips() {
        let snap = MetricsSnapshot { rps_window: 3.5, queue_depth: 2, ..Default::default() };
        let json = serde_json::to_string(&Response::metrics(snap)).expect("serialize");
        let back: Response = serde_json::from_str(&json).expect("deserialize");
        let m = back.metrics.expect("metrics");
        assert_eq!(m.queue_depth, 2);
        assert!((m.rps_window - 3.5).abs() < 1e-12);
    }
}
