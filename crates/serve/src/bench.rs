//! The serving load generator behind `tele serve-bench`.
//!
//! Measures one workload two ways and reports the ratio:
//!
//! * **sequential baseline** — every request is its own forward pass through
//!   [`TeleBert::encode_batch`] with a single sentence: the cost profile of
//!   the pre-serving encode path (no batching, no cache);
//! * **batched runtime** — the same requests submitted concurrently from
//!   `client_threads` threads through one [`InferenceSession`], so the
//!   batcher coalesces them into padded micro-batches and the LRU cache
//!   absorbs repeats.
//!
//! The report asserts bit-identity between the two result sets — the
//! speedup is only meaningful because the answers are *exactly* the same —
//! and carries the session's cache and batch-shape statistics.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use ktelebert::TeleBert;
use serde::{Deserialize, Serialize};
use tele_trace::now_ns;

use crate::error::ServeError;
use crate::metrics::{LatencySummary, ServeStats, TelemetryConfig, WindowStats};
use crate::session::{EncodeTicket, InferenceSession, SessionConfig};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Total encode requests in the workload.
    pub requests: usize,
    /// Distinct sentences the workload cycles through (`<= requests` makes
    /// the cache earn its keep, as repeated fault texts do in production).
    pub unique: usize,
    /// Concurrent client threads submitting requests.
    pub client_threads: usize,
    /// Session tuning for the batched side.
    pub session: SessionConfig,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            requests: 64,
            unique: 12,
            client_threads: 8,
            session: SessionConfig {
                max_batch: 16,
                max_wait_us: 200,
                cache_capacity: 256,
                ..Default::default()
            },
        }
    }
}

/// The serve-bench result, written to `results/bench_serve.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Requests per side.
    pub requests: u64,
    /// Distinct sentences in the workload.
    pub unique_sentences: u64,
    /// Concurrent client threads on the batched side.
    pub client_threads: u64,
    /// Wall-clock of the sequential baseline, ns.
    pub sequential_ns: u64,
    /// Wall-clock of the batched run, ns.
    pub batched_ns: u64,
    /// `sequential_ns / batched_ns`.
    pub speedup: f64,
    /// Sequential requests per second.
    pub sequential_rps: f64,
    /// Batched requests per second.
    pub batched_rps: f64,
    /// Whether every batched embedding matched its sequential counterpart
    /// bit-for-bit (`f32::to_bits`).
    pub bit_identical: bool,
    /// Cache hit rate observed on the batched side.
    pub cache_hit_rate: f64,
    /// Mean micro-batch size observed on the batched side.
    pub mean_batch_size: f64,
    /// Sliding-window latency view from the batched side: per-phase
    /// (queue/assemble/forward/write) p50/p90/p99/p999 plus true max. This
    /// is the block that makes the deadline-batching tail visible — the
    /// cumulative quantiles below it collapse to p50≈p99 when every sample
    /// shares one log bucket.
    pub latency_window: WindowStats,
    /// Full session statistics from the batched side (cumulative block).
    pub stats: ServeStats,
}

/// A deterministic workload of `requests` sentences cycling through
/// `unique` distinct fault texts.
pub fn workload(requests: usize, unique: usize) -> Vec<String> {
    let unique = unique.max(1);
    (0..requests)
        .map(|i| {
            let u = i % unique;
            format!(
                "alarm {u} raised on network function nf-{} severity {} link degraded",
                u % 7,
                u % 3
            )
        })
        .collect()
}

/// Per-thread result slots for the batched run (each client thread owns
/// one slot holding its chunk's embeddings or the first error it hit).
type BenchSlots = Mutex<Vec<Option<Result<Vec<Vec<f32>>, ServeError>>>>;

/// Runs the workload through a fresh batching session from
/// `client_threads` concurrent threads. Returns wall-clock ns, the results
/// in request order, and the session's final stats.
fn run_batched(
    bundle: &Arc<TeleBert>,
    texts: &[String],
    session_cfg: SessionConfig,
    client_threads: usize,
) -> Result<(u64, Vec<Vec<f32>>, ServeStats), ServeError> {
    let n = texts.len();
    let session = InferenceSession::from_arc(Arc::clone(bundle), session_cfg);
    let threads = client_threads.max(1).min(n.max(1));
    let chunk = n.div_ceil(threads);
    let batched_slots: BenchSlots = Mutex::new((0..threads).map(|_| None).collect());
    let t1 = now_ns();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = &session;
            let batched_slots = &batched_slots;
            scope.spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(n);
                let r = session.encode_many(&texts[lo..hi]);
                let mut slots = batched_slots.lock().unwrap_or_else(|e| e.into_inner());
                slots[t] = Some(r);
            });
        }
    });
    let batched_ns = now_ns().saturating_sub(t1).max(1);
    let stats = session.shutdown();

    let mut batched: Vec<Vec<f32>> = Vec::with_capacity(n);
    let mut slots = batched_slots.lock().unwrap_or_else(|e| e.into_inner());
    for slot in slots.iter_mut() {
        match slot.take() {
            Some(Ok(rows)) => batched.extend(rows),
            Some(Err(e)) => return Err(e),
            None => return Err(ServeError::Protocol("bench worker produced no result".into())),
        }
    }
    Ok((batched_ns, batched, stats))
}

/// Runs the load comparison and returns the report.
pub fn run_bench(bundle: TeleBert, cfg: &BenchConfig) -> Result<BenchReport, ServeError> {
    let bundle = Arc::new(bundle);
    let texts = workload(cfg.requests, cfg.unique);
    let n = texts.len();

    // Sequential baseline: one single-sentence forward per request.
    let t0 = now_ns();
    let mut sequential: Vec<Vec<f32>> = Vec::with_capacity(n);
    for text in &texts {
        let mut rows = bundle.encode_batch(std::slice::from_ref(text))?;
        sequential.push(rows.swap_remove(0));
    }
    let sequential_ns = now_ns().saturating_sub(t0).max(1);

    // Batched runtime: the same requests from concurrent client threads.
    let (batched_ns, batched, stats) =
        run_batched(&bundle, &texts, cfg.session.clone(), cfg.client_threads)?;

    let bit_identical = sequential.len() == batched.len()
        && sequential.iter().zip(&batched).all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });

    Ok(BenchReport {
        requests: n as u64,
        unique_sentences: cfg.unique.min(n) as u64,
        client_threads: cfg.client_threads.max(1).min(n) as u64,
        sequential_ns,
        batched_ns,
        speedup: sequential_ns as f64 / batched_ns as f64,
        sequential_rps: n as f64 / (sequential_ns as f64 / 1e9),
        batched_rps: n as f64 / (batched_ns as f64 / 1e9),
        bit_identical,
        cache_hit_rate: stats.cache_hit_rate,
        mean_batch_size: stats.mean_batch_size,
        latency_window: stats.latency_window.clone(),
        stats,
    })
}

/// The instrumented-vs-uninstrumented comparison, written to
/// `results/bench_telemetry_overhead.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Requests per run.
    pub requests: u64,
    /// Interleaved measurement rounds (best-of to reject scheduler noise).
    pub rounds: u64,
    /// Best batched wall-clock with per-request tracing ON, ns.
    pub instrumented_ns: u64,
    /// Best batched wall-clock with per-request tracing OFF, ns.
    pub uninstrumented_ns: u64,
    /// Requests per second with tracing on.
    pub instrumented_rps: f64,
    /// Requests per second with tracing off.
    pub uninstrumented_rps: f64,
    /// Fractional slowdown from tracing: `(on - off) / off` (negative =
    /// within noise, instrumented run happened to be faster).
    pub overhead_frac: f64,
    /// The acceptance budget for `overhead_frac`.
    pub threshold: f64,
    /// Whether `overhead_frac <= threshold`.
    pub within_budget: bool,
}

/// Measures the throughput cost of per-request tracing: the same batched
/// workload, alternating tracing on/off for `rounds` rounds on fresh
/// sessions, best wall-clock per side.
pub fn run_overhead_bench(
    bundle: TeleBert,
    cfg: &BenchConfig,
    rounds: usize,
) -> Result<OverheadReport, ServeError> {
    let bundle = Arc::new(bundle);
    let texts = workload(cfg.requests, cfg.unique);
    let n = texts.len();
    let rounds = rounds.max(1);
    let on_cfg = SessionConfig {
        telemetry: TelemetryConfig { tracing: true, ..cfg.session.telemetry.clone() },
        ..cfg.session.clone()
    };
    let off_cfg = SessionConfig {
        telemetry: TelemetryConfig { tracing: false, ..cfg.session.telemetry.clone() },
        ..cfg.session.clone()
    };
    let mut best_on = u64::MAX;
    let mut best_off = u64::MAX;
    for _ in 0..rounds {
        let (on_ns, _, _) = run_batched(&bundle, &texts, on_cfg.clone(), cfg.client_threads)?;
        let (off_ns, _, _) = run_batched(&bundle, &texts, off_cfg.clone(), cfg.client_threads)?;
        best_on = best_on.min(on_ns);
        best_off = best_off.min(off_ns);
    }
    let threshold = 0.05;
    let overhead_frac = (best_on as f64 - best_off as f64) / best_off as f64;
    Ok(OverheadReport {
        requests: n as u64,
        rounds: rounds as u64,
        instrumented_ns: best_on,
        uninstrumented_ns: best_off,
        instrumented_rps: n as f64 / (best_on as f64 / 1e9),
        uninstrumented_rps: n as f64 / (best_off as f64 / 1e9),
        overhead_frac,
        threshold,
        within_budget: overhead_frac <= threshold,
    })
}

/// One arrival rate's measurement in the open-loop overload sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RatePoint {
    /// Offered arrival rate, requests per second.
    pub arrival_rps: f64,
    /// Requests the dispatcher offered at this rate.
    pub offered: u64,
    /// Requests that completed with an embedding.
    pub completed: u64,
    /// Requests shed at admission with a typed `overloaded`.
    pub shed: u64,
    /// Requests expired in the queue past their deadline.
    pub deadline_expired: u64,
    /// `shed / offered`.
    pub shed_rate: f64,
    /// End-to-end latency of completed requests at this rate, µs.
    pub latency: LatencySummary,
}

/// The overload sweep result, written to `results/bench_serve_overload.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverloadReport {
    /// Requests offered per rate point.
    pub requests_per_rate: u64,
    /// The session's admission bound during the sweep (0 = unbounded).
    pub queue_capacity: u64,
    /// The default queueing deadline applied to every request, µs (0 = none).
    pub default_deadline_us: u64,
    /// One measurement per swept arrival rate, in sweep order.
    pub rates: Vec<RatePoint>,
}

/// Open-loop overload sweep: for each rate in `rates_rps`, a fresh session
/// receives `cfg.requests` arrivals on a fixed clock-driven schedule —
/// the dispatcher holds the schedule no matter how slowly the server drains,
/// which is what distinguishes overload from the closed-loop [`run_bench`]
/// (where slow service throttles the clients). Shed and expired requests are
/// counted instead of failing the sweep; any other error aborts it.
pub fn run_overload_bench(
    bundle: TeleBert,
    cfg: &BenchConfig,
    rates_rps: &[f64],
) -> Result<OverloadReport, ServeError> {
    let bundle = Arc::new(bundle);
    let texts = workload(cfg.requests, cfg.unique);
    let mut rates = Vec::with_capacity(rates_rps.len());
    for &rate in rates_rps {
        let rate = if rate.is_finite() && rate > 0.0 { rate } else { 1.0 };
        let gap_ns = (1e9 / rate) as u64;
        let session = InferenceSession::from_arc(Arc::clone(&bundle), cfg.session.clone());
        let mut tickets: Vec<EncodeTicket> = Vec::with_capacity(texts.len());
        let mut shed = 0u64;
        let t0 = now_ns();
        for (i, text) in texts.iter().enumerate() {
            // Hold the arrival schedule: sleep to t0 + i * gap, never longer.
            let target = t0.saturating_add((i as u64).saturating_mul(gap_ns));
            loop {
                let now = now_ns();
                if now >= target {
                    break;
                }
                std::thread::sleep(Duration::from_nanos((target - now).min(1_000_000)));
            }
            match session.encode_async(text, i as u64 + 1, None) {
                Ok(ticket) => tickets.push(ticket),
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => return Err(e),
            }
        }
        let mut completed = 0u64;
        let mut deadline_expired = 0u64;
        for ticket in tickets {
            match ticket.wait() {
                Ok(_) => completed += 1,
                Err(ServeError::DeadlineExceeded { .. }) => deadline_expired += 1,
                Err(e) => return Err(e),
            }
        }
        let stats = session.shutdown();
        let offered = texts.len() as u64;
        rates.push(RatePoint {
            arrival_rps: rate,
            offered,
            completed,
            shed,
            deadline_expired,
            shed_rate: shed as f64 / offered.max(1) as f64,
            latency: stats.latency_window.request_latency.clone(),
        });
    }
    Ok(OverloadReport {
        requests_per_rate: texts.len() as u64,
        queue_capacity: cfg.session.queue_capacity as u64,
        default_deadline_us: cfg.session.default_deadline_us,
        rates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    #[test]
    fn workload_is_deterministic_and_cycles() {
        let a = workload(16, 4);
        let b = workload(16, 4);
        assert_eq!(a, b);
        assert_eq!(a[0], a[4], "workload must cycle through the unique pool");
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn bench_report_is_bit_identical_and_counts_requests() {
        let cfg = BenchConfig {
            requests: 24,
            unique: 8,
            client_threads: 4,
            session: SessionConfig {
                max_batch: 8,
                max_wait_us: 200,
                cache_capacity: 64,
                ..Default::default()
            },
        };
        let report = run_bench(tiny_bundle(20), &cfg).expect("bench");
        assert_eq!(report.requests, 24);
        assert!(report.bit_identical, "batched results must match sequential bit-for-bit");
        assert!(report.cache_hit_rate > 0.0, "repeated texts must hit the cache: {report:?}");
        assert_eq!(report.stats.requests, 24);
        assert!(report.speedup > 0.0);
        assert_eq!(
            report.latency_window.request_latency.count, 24,
            "windowed quantiles must cover the whole fresh run: {:?}",
            report.latency_window
        );
        assert!(report.latency_window.queue_us.count > 0, "{:?}", report.latency_window);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: BenchReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.requests, report.requests);
        assert_eq!(back.latency_window.window_secs, report.latency_window.window_secs);
    }

    #[test]
    fn overload_sweep_sheds_at_rates_past_capacity() {
        let cfg = BenchConfig {
            requests: 30,
            unique: 30, // all distinct: the cache cannot absorb the overload
            client_threads: 1,
            session: SessionConfig {
                max_batch: 1,
                max_wait_us: 0,
                cache_capacity: 0,
                queue_capacity: 2,
                fault: crate::faults::ServeFault::SlowBatch(10),
                ..Default::default()
            },
        };
        let report = run_overload_bench(tiny_bundle(22), &cfg, &[5_000.0]).expect("overload sweep");
        assert_eq!(report.requests_per_rate, 30);
        assert_eq!(report.queue_capacity, 2);
        assert_eq!(report.rates.len(), 1);
        let point = &report.rates[0];
        assert_eq!(point.offered, 30);
        assert_eq!(point.completed + point.shed + point.deadline_expired, 30);
        assert!(point.completed >= 1, "some requests must complete: {point:?}");
        assert!(point.shed >= 1, "a 5k rps burst into capacity 2 must shed: {point:?}");
        assert!((point.shed_rate - point.shed as f64 / 30.0).abs() < 1e-12);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: OverloadReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.rates.len(), report.rates.len());
    }

    #[test]
    fn overhead_bench_compares_tracing_on_and_off() {
        let cfg = BenchConfig {
            requests: 16,
            unique: 8,
            client_threads: 4,
            session: SessionConfig {
                max_batch: 8,
                max_wait_us: 200,
                cache_capacity: 64,
                ..Default::default()
            },
        };
        let report = run_overhead_bench(tiny_bundle(21), &cfg, 2).expect("overhead bench");
        assert_eq!(report.requests, 16);
        assert_eq!(report.rounds, 2);
        assert!(report.instrumented_ns > 0 && report.uninstrumented_ns > 0);
        assert!((report.threshold - 0.05).abs() < 1e-12);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: OverheadReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.rounds, report.rounds);
    }
}
