//! The serving load generator behind `tele serve-bench`.
//!
//! Measures one workload two ways and reports the ratio:
//!
//! * **sequential baseline** — every request is its own forward pass through
//!   [`TeleBert::encode_batch`] with a single sentence: the cost profile of
//!   the pre-serving encode path (no batching, no cache);
//! * **batched runtime** — the same requests submitted concurrently from
//!   `client_threads` threads through one [`InferenceSession`], so the
//!   batcher coalesces them into padded micro-batches and the LRU cache
//!   absorbs repeats.
//!
//! The report asserts bit-identity between the two result sets — the
//! speedup is only meaningful because the answers are *exactly* the same —
//! and carries the session's cache and batch-shape statistics.

use std::sync::{Arc, Mutex};

use ktelebert::TeleBert;
use serde::{Deserialize, Serialize};
use tele_trace::now_ns;

use crate::error::ServeError;
use crate::metrics::ServeStats;
use crate::session::{InferenceSession, SessionConfig};

/// Load-generator configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// Total encode requests in the workload.
    pub requests: usize,
    /// Distinct sentences the workload cycles through (`<= requests` makes
    /// the cache earn its keep, as repeated fault texts do in production).
    pub unique: usize,
    /// Concurrent client threads submitting requests.
    pub client_threads: usize,
    /// Session tuning for the batched side.
    pub session: SessionConfig,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            requests: 64,
            unique: 12,
            client_threads: 8,
            session: SessionConfig { max_batch: 16, max_wait_us: 200, cache_capacity: 256 },
        }
    }
}

/// The serve-bench result, written to `results/bench_serve.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Requests per side.
    pub requests: u64,
    /// Distinct sentences in the workload.
    pub unique_sentences: u64,
    /// Concurrent client threads on the batched side.
    pub client_threads: u64,
    /// Wall-clock of the sequential baseline, ns.
    pub sequential_ns: u64,
    /// Wall-clock of the batched run, ns.
    pub batched_ns: u64,
    /// `sequential_ns / batched_ns`.
    pub speedup: f64,
    /// Sequential requests per second.
    pub sequential_rps: f64,
    /// Batched requests per second.
    pub batched_rps: f64,
    /// Whether every batched embedding matched its sequential counterpart
    /// bit-for-bit (`f32::to_bits`).
    pub bit_identical: bool,
    /// Cache hit rate observed on the batched side.
    pub cache_hit_rate: f64,
    /// Mean micro-batch size observed on the batched side.
    pub mean_batch_size: f64,
    /// Full session statistics from the batched side.
    pub stats: ServeStats,
}

/// A deterministic workload of `requests` sentences cycling through
/// `unique` distinct fault texts.
pub fn workload(requests: usize, unique: usize) -> Vec<String> {
    let unique = unique.max(1);
    (0..requests)
        .map(|i| {
            let u = i % unique;
            format!(
                "alarm {u} raised on network function nf-{} severity {} link degraded",
                u % 7,
                u % 3
            )
        })
        .collect()
}

/// Runs the load comparison and returns the report.
pub fn run_bench(bundle: TeleBert, cfg: &BenchConfig) -> Result<BenchReport, ServeError> {
    let bundle = Arc::new(bundle);
    let texts = workload(cfg.requests, cfg.unique);
    let n = texts.len();

    // Sequential baseline: one single-sentence forward per request.
    let t0 = now_ns();
    let mut sequential: Vec<Vec<f32>> = Vec::with_capacity(n);
    for text in &texts {
        let mut rows = bundle.encode_batch(std::slice::from_ref(text))?;
        sequential.push(rows.swap_remove(0));
    }
    let sequential_ns = now_ns().saturating_sub(t0).max(1);

    // Batched runtime: the same requests from concurrent client threads.
    let session = InferenceSession::from_arc(Arc::clone(&bundle), cfg.session.clone());
    let threads = cfg.client_threads.max(1).min(n);
    let chunk = n.div_ceil(threads);
    let batched_slots: Mutex<Vec<Option<Result<Vec<Vec<f32>>, ServeError>>>> =
        Mutex::new((0..threads).map(|_| None).collect());
    let t1 = now_ns();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = &session;
            let texts = &texts;
            let batched_slots = &batched_slots;
            scope.spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(n);
                let r = session.encode_many(&texts[lo..hi]);
                let mut slots = batched_slots.lock().unwrap_or_else(|e| e.into_inner());
                slots[t] = Some(r);
            });
        }
    });
    let batched_ns = now_ns().saturating_sub(t1).max(1);
    let stats = session.shutdown();

    let mut batched: Vec<Vec<f32>> = Vec::with_capacity(n);
    let mut slots = batched_slots.lock().unwrap_or_else(|e| e.into_inner());
    for slot in slots.iter_mut() {
        match slot.take() {
            Some(Ok(rows)) => batched.extend(rows),
            Some(Err(e)) => return Err(e),
            None => return Err(ServeError::Protocol("bench worker produced no result".into())),
        }
    }

    let bit_identical = sequential.len() == batched.len()
        && sequential.iter().zip(&batched).all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });

    Ok(BenchReport {
        requests: n as u64,
        unique_sentences: cfg.unique.min(n) as u64,
        client_threads: threads as u64,
        sequential_ns,
        batched_ns,
        speedup: sequential_ns as f64 / batched_ns as f64,
        sequential_rps: n as f64 / (sequential_ns as f64 / 1e9),
        batched_rps: n as f64 / (batched_ns as f64 / 1e9),
        bit_identical,
        cache_hit_rate: stats.cache_hit_rate,
        mean_batch_size: stats.mean_batch_size,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_bundle;

    #[test]
    fn workload_is_deterministic_and_cycles() {
        let a = workload(16, 4);
        let b = workload(16, 4);
        assert_eq!(a, b);
        assert_eq!(a[0], a[4], "workload must cycle through the unique pool");
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn bench_report_is_bit_identical_and_counts_requests() {
        let cfg = BenchConfig {
            requests: 24,
            unique: 8,
            client_threads: 4,
            session: SessionConfig { max_batch: 8, max_wait_us: 200, cache_capacity: 64 },
        };
        let report = run_bench(tiny_bundle(20), &cfg).expect("bench");
        assert_eq!(report.requests, 24);
        assert!(report.bit_identical, "batched results must match sequential bit-for-bit");
        assert!(report.cache_hit_rate > 0.0, "repeated texts must hit the cache: {report:?}");
        assert_eq!(report.stats.requests, 24);
        assert!(report.speedup > 0.0);
        let json = serde_json::to_string(&report).expect("serialize");
        let back: BenchReport = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.requests, report.requests);
    }
}
