//! The serving error surface: every way a request can fail, as a value.
//!
//! [`ServeError`] wraps the typed encode and checkpoint errors from the core
//! crate and adds the failure modes the runtime itself introduces (transport,
//! protocol, lifecycle), so callers can branch on the failure instead of
//! parsing panic messages.

use ktelebert::{CheckpointError, EncodeError};

/// Everything that can go wrong serving an embedding request.
#[derive(Debug)]
pub enum ServeError {
    /// The model rejected the request (empty batch, ragged rows, NaNs).
    Encode(EncodeError),
    /// The checkpoint bundle failed to load (bad magic, checksum mismatch,
    /// missing or shape-mismatched parameters).
    Checkpoint(CheckpointError),
    /// Transport failure talking to a serve endpoint.
    Io(std::io::Error),
    /// The peer sent a line that is not a valid protocol message.
    Protocol(String),
    /// The session or server has shut down; no further requests are served.
    SessionClosed,
    /// Admission control shed the request: the queue was already at capacity
    /// when it arrived, so it was rejected at enqueue instead of stalling.
    Overloaded {
        /// Queue depth observed when the request was shed.
        depth: u64,
        /// The configured queue capacity the depth collided with.
        capacity: u64,
    },
    /// The request waited in the queue past its deadline and was expired
    /// instead of being forwarded dead to the model.
    DeadlineExceeded {
        /// How long the request actually waited before expiry.
        waited_us: u64,
        /// The deadline the request carried.
        deadline_us: u64,
    },
    /// A blocking client operation exceeded its configured read/write
    /// timeout; the server may still be alive but is not answering in time.
    Timeout,
    /// The worker servicing the batch panicked; the panic was contained and
    /// converted into this error instead of poisoning the session.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Encode(e) => write!(f, "encode failed: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            ServeError::Io(e) => write!(f, "transport failed: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::SessionClosed => write!(f, "session is shut down"),
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "server overloaded: queue depth {depth} at capacity {capacity}")
            }
            ServeError::DeadlineExceeded { waited_us, deadline_us } => {
                write!(f, "deadline exceeded: waited {waited_us} us past a {deadline_us} us budget")
            }
            ServeError::Timeout => write!(f, "operation timed out"),
            ServeError::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Encode(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for ServeError {
    fn from(e: EncodeError) -> Self {
        ServeError::Encode(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Encode(EncodeError::EmptyBatch), "encode failed"),
            (ServeError::Checkpoint(CheckpointError::BadMagic), "checkpoint failed"),
            (ServeError::Io(std::io::Error::other("x")), "transport failed"),
            (ServeError::Protocol("bad line".into()), "protocol violation"),
            (ServeError::SessionClosed, "shut down"),
            (ServeError::Overloaded { depth: 9, capacity: 8 }, "overloaded"),
            (
                ServeError::DeadlineExceeded { waited_us: 700, deadline_us: 500 },
                "deadline exceeded",
            ),
            (ServeError::Timeout, "timed out"),
            (ServeError::Internal("worker panic".into()), "internal server error"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn conversions_preserve_the_inner_error() {
        let e: ServeError = EncodeError::EmptyBatch.into();
        assert!(matches!(e, ServeError::Encode(EncodeError::EmptyBatch)));
        let e: ServeError = CheckpointError::BadMagic.into();
        assert!(matches!(e, ServeError::Checkpoint(CheckpointError::BadMagic)));
    }
}
