//! The serving error surface: every way a request can fail, as a value.
//!
//! [`ServeError`] wraps the typed encode and checkpoint errors from the core
//! crate and adds the failure modes the runtime itself introduces (transport,
//! protocol, lifecycle), so callers can branch on the failure instead of
//! parsing panic messages.

use ktelebert::{CheckpointError, EncodeError};

/// Everything that can go wrong serving an embedding request.
#[derive(Debug)]
pub enum ServeError {
    /// The model rejected the request (empty batch, ragged rows, NaNs).
    Encode(EncodeError),
    /// The checkpoint bundle failed to load (bad magic, checksum mismatch,
    /// missing or shape-mismatched parameters).
    Checkpoint(CheckpointError),
    /// Transport failure talking to a serve endpoint.
    Io(std::io::Error),
    /// The peer sent a line that is not a valid protocol message.
    Protocol(String),
    /// The session or server has shut down; no further requests are served.
    SessionClosed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Encode(e) => write!(f, "encode failed: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint failed: {e}"),
            ServeError::Io(e) => write!(f, "transport failed: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::SessionClosed => write!(f, "session is shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Encode(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for ServeError {
    fn from(e: EncodeError) -> Self {
        ServeError::Encode(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::Encode(EncodeError::EmptyBatch), "encode failed"),
            (ServeError::Checkpoint(CheckpointError::BadMagic), "checkpoint failed"),
            (
                ServeError::Io(std::io::Error::other("x")),
                "transport failed",
            ),
            (ServeError::Protocol("bad line".into()), "protocol violation"),
            (ServeError::SessionClosed, "shut down"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn conversions_preserve_the_inner_error() {
        let e: ServeError = EncodeError::EmptyBatch.into();
        assert!(matches!(e, ServeError::Encode(EncodeError::EmptyBatch)));
        let e: ServeError = CheckpointError::BadMagic.into();
        assert!(matches!(e, ServeError::Checkpoint(CheckpointError::BadMagic)));
    }
}
