//! Serving metrics: latency histograms, throughput counters, cache and
//! batch-shape statistics.
//!
//! The trace crate's registry is thread-local by design, but serving spans
//! many threads (request threads, the batcher, TCP workers). The runtime
//! therefore accumulates into a [`ServeMetrics`] value behind a mutex, and
//! publishes the aggregate into whichever thread's registry asks for it via
//! [`ServeMetrics::publish`] (backed by `tele_trace::metrics::histogram_merge`).
//! Timing uses `tele_trace::now_ns()` — the workspace's single monotonic
//! clock — so serve latencies line up with trace spans on a shared timeline.

use serde::{Deserialize, Serialize};
use tele_trace::metrics::Histogram;

/// Aggregated serving metrics, accumulated across worker threads.
#[derive(Default)]
pub struct ServeMetrics {
    /// Enqueue-to-completion latency of each request, ns.
    pub request_latency_ns: Histogram,
    /// Forward-pass latency of each executed micro-batch, ns.
    pub batch_latency_ns: Histogram,
    /// Size (request count) of each executed micro-batch.
    pub batch_size: Histogram,
    /// Requests completed (ok or error).
    pub requests: u64,
    /// Requests that failed with an error.
    pub errors: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from the embedding cache.
    pub cache_hits: u64,
    /// Requests that required a forward pass.
    pub cache_misses: u64,
    /// Unique sentences actually pushed through the model (after in-batch
    /// dedup), i.e. forward-pass rows.
    pub encoded_sentences: u64,
}

/// Quantile summary of one latency histogram, in microseconds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median estimate, µs.
    pub p50_us: f64,
    /// 90th percentile estimate, µs.
    pub p90_us: f64,
    /// 99th percentile estimate, µs.
    pub p99_us: f64,
    /// Largest sample, µs.
    pub max_us: f64,
}

fn latency_summary(h: &Histogram) -> LatencySummary {
    let s = h.summary();
    LatencySummary {
        count: s.count,
        mean_us: s.mean / 1_000.0,
        p50_us: s.p50 / 1_000.0,
        p90_us: s.p90 / 1_000.0,
        p99_us: s.p99 / 1_000.0,
        max_us: s.max as f64 / 1_000.0,
    }
}

/// Point-in-time serving statistics, serializable for the `stats` protocol
/// op and the bench report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from cache.
    pub cache_hits: u64,
    /// Requests that required a forward pass.
    pub cache_misses: u64,
    /// Fraction of requests answered from cache (0 before any request).
    pub cache_hit_rate: f64,
    /// Forward-pass rows after in-batch dedup.
    pub encoded_sentences: u64,
    /// Mean executed batch size (0 before any batch).
    pub mean_batch_size: f64,
    /// Largest executed batch.
    pub max_batch_size: u64,
    /// Request latency summary (enqueue to completion).
    pub request_latency: LatencySummary,
    /// Micro-batch forward latency summary.
    pub batch_latency: LatencySummary,
}

impl ServeMetrics {
    /// Records one completed request with its end-to-end latency.
    pub fn record_request(&mut self, latency_ns: u64, ok: bool) {
        self.requests += 1;
        if !ok {
            self.errors += 1;
        }
        self.request_latency_ns.record(latency_ns);
    }

    /// Records one executed micro-batch: its request count, cache hit/miss
    /// split, unique forward rows, and forward latency.
    pub fn record_batch(&mut self, size: u64, hits: u64, misses: u64, unique: u64, ns: u64) {
        self.batches += 1;
        self.batch_size.record(size);
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.encoded_sentences += unique;
        self.batch_latency_ns.record(ns);
    }

    /// Summarises the current aggregates.
    pub fn stats(&self) -> ServeStats {
        let looked_up = self.cache_hits + self.cache_misses;
        ServeStats {
            requests: self.requests,
            errors: self.errors,
            batches: self.batches,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_hit_rate: if looked_up == 0 {
                0.0
            } else {
                self.cache_hits as f64 / looked_up as f64
            },
            encoded_sentences: self.encoded_sentences,
            mean_batch_size: self.batch_size.mean(),
            max_batch_size: self.batch_size.max(),
            request_latency: latency_summary(&self.request_latency_ns),
            batch_latency: latency_summary(&self.batch_latency_ns),
        }
    }

    /// Publishes the aggregates into the *calling thread's* trace registry
    /// under `serve.*` names (no-op while tracing is disabled), so serving
    /// metrics appear in the same snapshot as everything else traced on that
    /// thread.
    pub fn publish(&self) {
        use tele_trace::metrics as m;
        m::histogram_merge("serve.request_latency_ns", &self.request_latency_ns);
        m::histogram_merge("serve.batch_latency_ns", &self.batch_latency_ns);
        m::histogram_merge("serve.batch_size", &self.batch_size);
        m::counter_add("serve.requests", self.requests);
        m::counter_add("serve.errors", self.errors);
        m::counter_add("serve.batches", self.batches);
        m::counter_add("serve.cache_hits", self.cache_hits);
        m::counter_add("serve.cache_misses", self.cache_misses);
        m::counter_add("serve.encoded_sentences", self.encoded_sentences);
        m::gauge_set("serve.cache_hit_rate", self.stats().cache_hit_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate_batches_and_requests() {
        let mut m = ServeMetrics::default();
        m.record_batch(4, 1, 3, 3, 2_000_000);
        m.record_batch(2, 2, 0, 0, 1_000_000);
        m.record_request(3_000_000, true);
        m.record_request(5_000_000, false);
        let s = m.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!((s.cache_hits, s.cache_misses), (3, 3));
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.encoded_sentences, 3);
        assert!((s.mean_batch_size - 3.0).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 4);
        assert_eq!(s.request_latency.count, 2);
        assert!(s.request_latency.max_us >= 4_000.0);
    }

    #[test]
    fn stats_are_zero_before_traffic() {
        let s = ServeMetrics::default().stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn publish_merges_into_the_trace_registry() {
        tele_trace::enable();
        tele_trace::reset();
        let mut m = ServeMetrics::default();
        m.record_batch(8, 0, 8, 8, 4_000_000);
        m.record_request(5_000_000, true);
        m.publish();
        let snap = tele_trace::metrics::snapshot();
        assert!(snap.counters.iter().any(|(k, v)| k == "serve.requests" && *v == 1));
        assert!(snap.histograms.iter().any(|(k, h)| k == "serve.batch_size" && h.count == 1));
        tele_trace::reset();
        tele_trace::disable();
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let mut m = ServeMetrics::default();
        m.record_batch(4, 1, 3, 3, 2_000_000);
        m.record_request(3_000_000, true);
        let s = m.stats();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: ServeStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.requests, s.requests);
        assert_eq!(back.cache_hits, s.cache_hits);
        assert!((back.cache_hit_rate - s.cache_hit_rate).abs() < 1e-12);
        assert_eq!(back.request_latency.count, s.request_latency.count);
    }
}
