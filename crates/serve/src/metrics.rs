//! Serving metrics: latency histograms, throughput counters, cache and
//! batch-shape statistics — cumulative **and** sliding-window.
//!
//! The trace crate's registry is thread-local by design, but serving spans
//! many threads (request threads, the batcher, TCP workers). The runtime
//! therefore accumulates into a [`ServeMetrics`] value behind a mutex, and
//! publishes the aggregate into whichever thread's registry asks for it via
//! [`ServeMetrics::publish`] (backed by `tele_trace::metrics::histogram_merge`).
//! Timing uses `tele_trace::now_ns()` — the workspace's single monotonic
//! clock — so serve latencies line up with trace spans on a shared timeline.
//!
//! Every tracked latency is recorded twice: into a cumulative
//! [`Histogram`] (whole-process summaries, unchanged from PR 6) and into a
//! [`WindowedHistogram`] ring covering the last
//! [`TelemetryConfig::window_secs`] seconds. The windowed view is what makes
//! tails visible: a cumulative histogram over a bursty run collapses
//! p50≈p99 (every sample lands in one log bucket), while the window isolates
//! the current regime. Request latency further decomposes into phases —
//! queue wait, batch assembly, forward pass, reply write — so a bad tail is
//! attributable, not just observable.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use tele_trace::metrics::Histogram;
use tele_trace::window::WindowedHistogram;

/// Telemetry knobs for the serving runtime.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Per-request phase tracing and flight-recorder notes. Off leaves only
    /// the cumulative counters/histograms (the overhead-bench baseline).
    pub tracing: bool,
    /// Span of the sliding latency window, seconds.
    pub window_secs: u64,
    /// Number of ring buckets the window is split into.
    pub window_buckets: usize,
    /// Flight-recorder ring capacity in notes.
    pub flight_capacity: usize,
    /// Directory for flight-recorder dumps on typed errors; `None` disables
    /// dumping (notes are still collected).
    pub flight_dir: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            tracing: true,
            window_secs: 60,
            window_buckets: 12,
            flight_capacity: 256,
            flight_dir: None,
        }
    }
}

/// One latency series tracked two ways: a cumulative histogram and a
/// sliding-window ring over the same samples.
#[derive(Debug)]
pub struct PhaseTrack {
    cum: Histogram,
    win: WindowedHistogram,
}

impl PhaseTrack {
    fn new(cfg: &TelemetryConfig) -> PhaseTrack {
        PhaseTrack {
            cum: Histogram::default(),
            win: WindowedHistogram::new(cfg.window_secs, cfg.window_buckets),
        }
    }

    /// Records one sample observed at `now_ns`.
    pub fn record(&mut self, now_ns: u64, v: u64) {
        self.cum.record(v);
        self.win.record(now_ns, v);
    }

    /// The cumulative (whole-process) histogram.
    pub fn cumulative(&self) -> &Histogram {
        &self.cum
    }

    /// The samples still inside the window ending at `now_ns`.
    pub fn window(&self, now_ns: u64) -> Histogram {
        self.win.merged(now_ns)
    }
}

/// Aggregated serving metrics, accumulated across worker threads.
pub struct ServeMetrics {
    /// Enqueue-to-completion latency of each request, ns.
    pub request_latency_ns: Histogram,
    /// Forward-pass latency of each executed micro-batch, ns.
    pub batch_latency_ns: Histogram,
    /// Size (request count) of each executed micro-batch.
    pub batch_size: Histogram,
    /// Requests completed (ok or error).
    pub requests: u64,
    /// Requests that failed with an error.
    pub errors: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from the embedding cache.
    pub cache_hits: u64,
    /// Requests that required a forward pass.
    pub cache_misses: u64,
    /// Unique sentences actually pushed through the model (after in-batch
    /// dedup), i.e. forward-pass rows.
    pub encoded_sentences: u64,
    /// Flight-recorder dumps written.
    pub flight_dumps: u64,
    /// Requests shed at enqueue by admission control.
    pub shed: u64,
    /// Queued requests expired past their deadline instead of forwarded.
    pub deadline_expired: u64,
    /// Hot checkpoint rollovers completed.
    pub rollovers: u64,
    window_secs: u64,
    start_ns: u64,
    request_window: WindowedHistogram,
    batch_window: WindowedHistogram,
    /// Queue wait per request (enqueue → batch drain), µs.
    queue_us: PhaseTrack,
    /// Batch assembly per micro-batch (cache lookups + dedup), µs.
    assemble_us: PhaseTrack,
    /// Forward pass per micro-batch, µs.
    forward_us: PhaseTrack,
    /// Reply serialization + socket write per response, µs.
    write_us: PhaseTrack,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new(&TelemetryConfig::default())
    }
}

/// Quantile summary of one latency histogram, in microseconds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median estimate, µs.
    pub p50_us: f64,
    /// 90th percentile estimate, µs.
    pub p90_us: f64,
    /// 99th percentile estimate, µs.
    pub p99_us: f64,
    /// 99.9th percentile estimate, µs.
    pub p999_us: f64,
    /// Largest sample (exact, not estimated), µs.
    pub max_us: f64,
}

/// Summarises a histogram of nanosecond samples in microseconds.
fn latency_summary(h: &Histogram) -> LatencySummary {
    let s = h.summary();
    LatencySummary {
        count: s.count,
        mean_us: s.mean / 1_000.0,
        p50_us: s.p50 / 1_000.0,
        p90_us: s.p90 / 1_000.0,
        p99_us: s.p99 / 1_000.0,
        p999_us: s.p999 / 1_000.0,
        max_us: s.max as f64 / 1_000.0,
    }
}

/// Summarises a histogram whose samples are already microseconds.
fn us_summary(h: &Histogram) -> LatencySummary {
    let s = h.summary();
    LatencySummary {
        count: s.count,
        mean_us: s.mean,
        p50_us: s.p50,
        p90_us: s.p90,
        p99_us: s.p99,
        p999_us: s.p999,
        max_us: s.max as f64,
    }
}

/// Cumulative per-phase latency summaries (µs).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Queue wait: enqueue → batch drain.
    pub queue_us: LatencySummary,
    /// Batch assembly: cache lookups + in-batch dedup.
    pub assemble_us: LatencySummary,
    /// Forward pass through the model.
    pub forward_us: LatencySummary,
    /// Reply serialization + socket write.
    pub write_us: LatencySummary,
}

/// Sliding-window latency summaries: the last `window_secs` seconds only,
/// with true max — this is where the deadline-batching tail is visible.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WindowStats {
    /// Span of the window, seconds.
    pub window_secs: u64,
    /// End-to-end request latency inside the window.
    pub request_latency: LatencySummary,
    /// Micro-batch forward latency inside the window.
    pub batch_latency: LatencySummary,
    /// Queue-wait phase inside the window.
    pub queue_us: LatencySummary,
    /// Assembly phase inside the window.
    pub assemble_us: LatencySummary,
    /// Forward phase inside the window.
    pub forward_us: LatencySummary,
    /// Write phase inside the window.
    pub write_us: LatencySummary,
}

/// Point-in-time serving statistics, serializable for the `stats` protocol
/// op and the bench report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests completed.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered from cache.
    pub cache_hits: u64,
    /// Requests that required a forward pass.
    pub cache_misses: u64,
    /// Fraction of requests answered from cache (0 before any request).
    pub cache_hit_rate: f64,
    /// Forward-pass rows after in-batch dedup.
    pub encoded_sentences: u64,
    /// Flight-recorder dumps written so far.
    pub flight_dumps: u64,
    /// Requests shed at enqueue by admission control.
    pub shed: u64,
    /// Queued requests expired past their deadline.
    pub deadline_expired: u64,
    /// Hot checkpoint rollovers completed.
    pub rollovers: u64,
    /// Mean executed batch size (0 before any batch).
    pub mean_batch_size: f64,
    /// Largest executed batch.
    pub max_batch_size: u64,
    /// Request latency summary (enqueue to completion), whole process.
    pub request_latency: LatencySummary,
    /// Micro-batch forward latency summary, whole process.
    pub batch_latency: LatencySummary,
    /// Cumulative per-phase decomposition of request latency.
    pub phases: PhaseStats,
    /// Sliding-window view of everything above.
    pub latency_window: WindowStats,
}

/// Live snapshot answered by the `metrics` wire op: current gauges plus the
/// full [`ServeStats`] (cumulative + windowed).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic timestamp the snapshot was taken at.
    pub now_ns: u64,
    /// Span of the sliding window, seconds.
    pub window_secs: u64,
    /// Completed requests per second over the window.
    pub rps_window: f64,
    /// Requests queued but not yet drained into a batch.
    pub queue_depth: u64,
    /// Requests accepted and not yet answered.
    pub in_flight: u64,
    /// Version of the checkpoint bundle currently serving (starts at 1,
    /// bumped by each hot rollover).
    pub model_version: u64,
    /// Full serving statistics.
    pub stats: ServeStats,
}

impl ServeMetrics {
    /// Creates metrics with windows sized by `cfg`.
    pub fn new(cfg: &TelemetryConfig) -> ServeMetrics {
        ServeMetrics {
            request_latency_ns: Histogram::default(),
            batch_latency_ns: Histogram::default(),
            batch_size: Histogram::default(),
            requests: 0,
            errors: 0,
            batches: 0,
            cache_hits: 0,
            cache_misses: 0,
            encoded_sentences: 0,
            flight_dumps: 0,
            shed: 0,
            deadline_expired: 0,
            rollovers: 0,
            window_secs: cfg.window_secs.max(1),
            start_ns: tele_trace::now_ns(),
            request_window: WindowedHistogram::new(cfg.window_secs, cfg.window_buckets),
            batch_window: WindowedHistogram::new(cfg.window_secs, cfg.window_buckets),
            queue_us: PhaseTrack::new(cfg),
            assemble_us: PhaseTrack::new(cfg),
            forward_us: PhaseTrack::new(cfg),
            write_us: PhaseTrack::new(cfg),
        }
    }

    /// Records one completed request with its end-to-end latency, observed
    /// at `now_ns`.
    pub fn record_request(&mut self, now_ns: u64, latency_ns: u64, ok: bool) {
        self.requests += 1;
        if !ok {
            self.errors += 1;
        }
        self.request_latency_ns.record(latency_ns);
        self.request_window.record(now_ns, latency_ns);
    }

    /// Records one executed micro-batch: its request count, cache hit/miss
    /// split, unique forward rows, and forward latency.
    pub fn record_batch(
        &mut self,
        now_ns: u64,
        size: u64,
        hits: u64,
        misses: u64,
        unique: u64,
        ns: u64,
    ) {
        self.batches += 1;
        self.batch_size.record(size);
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.encoded_sentences += unique;
        self.batch_latency_ns.record(ns);
        self.batch_window.record(now_ns, ns);
    }

    /// Records one request's queue wait (enqueue → batch drain), µs.
    pub fn record_queue_us(&mut self, now_ns: u64, us: u64) {
        self.queue_us.record(now_ns, us);
    }

    /// Records one micro-batch's assembly time (cache + dedup), µs.
    pub fn record_assemble_us(&mut self, now_ns: u64, us: u64) {
        self.assemble_us.record(now_ns, us);
    }

    /// Records one micro-batch's forward-pass time, µs.
    pub fn record_forward_us(&mut self, now_ns: u64, us: u64) {
        self.forward_us.record(now_ns, us);
    }

    /// Records one response's serialization + socket-write time, µs.
    pub fn record_write_us(&mut self, now_ns: u64, us: u64) {
        self.write_us.record(now_ns, us);
    }

    /// Completed requests per second over the window ending at `now_ns`
    /// (scaled by actual elapsed time while the process is younger than one
    /// window).
    pub fn rps_window(&self, now_ns: u64) -> f64 {
        let in_window = self.request_window.merged(now_ns).count();
        let elapsed = (now_ns.saturating_sub(self.start_ns)) as f64 / 1e9;
        let span = elapsed.clamp(1e-9, self.window_secs as f64);
        in_window as f64 / span
    }

    /// Summarises the current aggregates as of `now_ns`.
    pub fn stats_at(&self, now_ns: u64) -> ServeStats {
        let looked_up = self.cache_hits + self.cache_misses;
        ServeStats {
            requests: self.requests,
            errors: self.errors,
            batches: self.batches,
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            cache_hit_rate: if looked_up == 0 {
                0.0
            } else {
                self.cache_hits as f64 / looked_up as f64
            },
            encoded_sentences: self.encoded_sentences,
            flight_dumps: self.flight_dumps,
            shed: self.shed,
            deadline_expired: self.deadline_expired,
            rollovers: self.rollovers,
            mean_batch_size: self.batch_size.mean(),
            max_batch_size: self.batch_size.max(),
            request_latency: latency_summary(&self.request_latency_ns),
            batch_latency: latency_summary(&self.batch_latency_ns),
            phases: PhaseStats {
                queue_us: us_summary(self.queue_us.cumulative()),
                assemble_us: us_summary(self.assemble_us.cumulative()),
                forward_us: us_summary(self.forward_us.cumulative()),
                write_us: us_summary(self.write_us.cumulative()),
            },
            latency_window: WindowStats {
                window_secs: self.window_secs,
                request_latency: latency_summary(&self.request_window.merged(now_ns)),
                batch_latency: latency_summary(&self.batch_window.merged(now_ns)),
                queue_us: us_summary(&self.queue_us.window(now_ns)),
                assemble_us: us_summary(&self.assemble_us.window(now_ns)),
                forward_us: us_summary(&self.forward_us.window(now_ns)),
                write_us: us_summary(&self.write_us.window(now_ns)),
            },
        }
    }

    /// Summarises the current aggregates "now".
    pub fn stats(&self) -> ServeStats {
        self.stats_at(tele_trace::now_ns())
    }

    /// Builds a trace-registry-shaped snapshot (counters, gauges, histogram
    /// summaries) suitable for `tele_trace::export::prometheus_text`, with
    /// the caller-supplied live gauges folded in. Names are the same
    /// `serve.*` keys [`publish`](Self::publish) uses, plus `.window`
    /// variants for the sliding-window series.
    pub fn registry_snapshot(
        &self,
        now_ns: u64,
        queue_depth: u64,
        in_flight: u64,
        model_version: u64,
    ) -> tele_trace::metrics::MetricsSnapshot {
        let counters = vec![
            ("serve.batches".to_string(), self.batches),
            ("serve.cache_hits".to_string(), self.cache_hits),
            ("serve.cache_misses".to_string(), self.cache_misses),
            ("serve.deadline_expired".to_string(), self.deadline_expired),
            ("serve.encoded_sentences".to_string(), self.encoded_sentences),
            ("serve.errors".to_string(), self.errors),
            ("serve.flight_dumps".to_string(), self.flight_dumps),
            ("serve.requests".to_string(), self.requests),
            ("serve.rollover".to_string(), self.rollovers),
            ("serve.shed".to_string(), self.shed),
        ];
        let looked_up = self.cache_hits + self.cache_misses;
        let hit_rate = if looked_up == 0 { 0.0 } else { self.cache_hits as f64 / looked_up as f64 };
        let gauges = vec![
            ("serve.cache_hit_rate".to_string(), hit_rate),
            ("serve.in_flight".to_string(), in_flight as f64),
            ("serve.model_version".to_string(), model_version as f64),
            ("serve.queue_depth".to_string(), queue_depth as f64),
            ("serve.rps_window".to_string(), self.rps_window(now_ns)),
        ];
        let histograms = vec![
            ("serve.assemble_us".to_string(), self.assemble_us.cumulative().summary()),
            ("serve.assemble_us.window".to_string(), self.assemble_us.window(now_ns).summary()),
            ("serve.batch_latency_ns".to_string(), self.batch_latency_ns.summary()),
            ("serve.batch_size".to_string(), self.batch_size.summary()),
            ("serve.forward_us".to_string(), self.forward_us.cumulative().summary()),
            ("serve.forward_us.window".to_string(), self.forward_us.window(now_ns).summary()),
            ("serve.queue_us".to_string(), self.queue_us.cumulative().summary()),
            ("serve.queue_us.window".to_string(), self.queue_us.window(now_ns).summary()),
            ("serve.request_latency_ns".to_string(), self.request_latency_ns.summary()),
            (
                "serve.request_latency_ns.window".to_string(),
                self.request_window.merged(now_ns).summary(),
            ),
            ("serve.write_us".to_string(), self.write_us.cumulative().summary()),
            ("serve.write_us.window".to_string(), self.write_us.window(now_ns).summary()),
        ];
        tele_trace::metrics::MetricsSnapshot { counters, gauges, histograms }
    }

    /// Publishes the aggregates into the *calling thread's* trace registry
    /// under `serve.*` names (no-op while tracing is disabled), so serving
    /// metrics appear in the same snapshot as everything else traced on that
    /// thread.
    pub fn publish(&self) {
        use tele_trace::metrics as m;
        m::histogram_merge("serve.request_latency_ns", &self.request_latency_ns);
        m::histogram_merge("serve.batch_latency_ns", &self.batch_latency_ns);
        m::histogram_merge("serve.batch_size", &self.batch_size);
        m::histogram_merge("serve.queue_us", self.queue_us.cumulative());
        m::histogram_merge("serve.assemble_us", self.assemble_us.cumulative());
        m::histogram_merge("serve.forward_us", self.forward_us.cumulative());
        m::histogram_merge("serve.write_us", self.write_us.cumulative());
        m::counter_add("serve.requests", self.requests);
        m::counter_add("serve.errors", self.errors);
        m::counter_add("serve.batches", self.batches);
        m::counter_add("serve.cache_hits", self.cache_hits);
        m::counter_add("serve.cache_misses", self.cache_misses);
        m::counter_add("serve.encoded_sentences", self.encoded_sentences);
        m::counter_add("serve.flight_dumps", self.flight_dumps);
        m::counter_add("serve.shed", self.shed);
        m::counter_add("serve.deadline_expired", self.deadline_expired);
        m::counter_add("serve.rollover", self.rollovers);
        m::gauge_set("serve.cache_hit_rate", self.stats().cache_hit_rate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> u64 {
        secs * 1_000_000_000
    }

    #[test]
    fn stats_aggregate_batches_and_requests() {
        let mut m = ServeMetrics::default();
        let now = tele_trace::now_ns();
        m.record_batch(now, 4, 1, 3, 3, 2_000_000);
        m.record_batch(now, 2, 2, 0, 0, 1_000_000);
        m.record_request(now, 3_000_000, true);
        m.record_request(now, 5_000_000, false);
        let s = m.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.batches, 2);
        assert_eq!((s.cache_hits, s.cache_misses), (3, 3));
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.encoded_sentences, 3);
        assert!((s.mean_batch_size - 3.0).abs() < 1e-12);
        assert_eq!(s.max_batch_size, 4);
        assert_eq!(s.request_latency.count, 2);
        assert!(s.request_latency.max_us >= 4_000.0);
    }

    #[test]
    fn stats_are_zero_before_traffic() {
        let s = ServeMetrics::default().stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn window_stats_expire_but_cumulative_do_not() {
        let cfg = TelemetryConfig { window_secs: 10, window_buckets: 10, ..Default::default() };
        let mut m = ServeMetrics::new(&cfg);
        m.record_request(at(1), 8_000_000, true);
        m.record_queue_us(at(1), 9_000);
        // Far beyond the window: cumulative keeps the sample, the window
        // must be empty.
        let s = m.stats_at(at(100));
        assert_eq!(s.request_latency.count, 1);
        assert_eq!(s.phases.queue_us.count, 1);
        assert_eq!(s.latency_window.request_latency.count, 0);
        assert_eq!(s.latency_window.queue_us.count, 0);
        assert_eq!(s.latency_window.window_secs, 10);
    }

    #[test]
    fn phase_summaries_are_in_microseconds() {
        let mut m = ServeMetrics::default();
        let now = tele_trace::now_ns();
        m.record_forward_us(now, 1_000);
        let s = m.stats_at(now);
        assert_eq!(s.phases.forward_us.count, 1);
        assert!((s.phases.forward_us.max_us - 1_000.0).abs() < 1e-9);
        assert_eq!(s.latency_window.forward_us.count, 1);
    }

    #[test]
    fn rps_window_scales_by_elapsed_when_young() {
        let cfg = TelemetryConfig { window_secs: 60, ..Default::default() };
        let mut m = ServeMetrics::new(&cfg);
        let t0 = m.start_ns;
        for _ in 0..10 {
            m.record_request(t0 + at(1), 1_000, true);
        }
        // 10 requests in ~2s of process life: rps ≈ 5, not 10/60.
        let rps = m.rps_window(t0 + at(2));
        assert!((rps - 5.0).abs() < 0.1, "rps {rps}");
    }

    #[test]
    fn publish_merges_into_the_trace_registry() {
        tele_trace::enable();
        tele_trace::reset();
        let mut m = ServeMetrics::default();
        let now = tele_trace::now_ns();
        m.record_batch(now, 8, 0, 8, 8, 4_000_000);
        m.record_request(now, 5_000_000, true);
        m.record_queue_us(now, 120);
        m.publish();
        let snap = tele_trace::metrics::snapshot();
        assert!(snap.counters.iter().any(|(k, v)| k == "serve.requests" && *v == 1));
        assert!(snap.histograms.iter().any(|(k, h)| k == "serve.batch_size" && h.count == 1));
        assert!(snap.histograms.iter().any(|(k, h)| k == "serve.queue_us" && h.count == 1));
        tele_trace::reset();
        tele_trace::disable();
    }

    #[test]
    fn registry_snapshot_renders_as_prometheus() {
        let mut m = ServeMetrics::default();
        let now = tele_trace::now_ns();
        m.record_request(now, 2_000_000, true);
        m.record_queue_us(now, 55);
        let snap = m.registry_snapshot(now, 3, 7, 1);
        let text = tele_trace::export::prometheus_text(&snap);
        assert!(text.contains("serve_requests 1"), "{text}");
        assert!(text.contains("serve_queue_depth 3"), "{text}");
        assert!(text.contains("serve_model_version 1"), "{text}");
        assert!(text.contains("serve_shed 0"), "{text}");
        assert!(text.contains("serve_deadline_expired 0"), "{text}");
        assert!(text.contains("serve_rollover 0"), "{text}");
        assert!(text.contains("serve_queue_us{quantile=\"0.999\"}"), "{text}");
        // Every metric family is typed exactly once.
        let mut families: Vec<&str> =
            text.lines().filter_map(|l| l.strip_prefix("# TYPE ")).collect();
        let before = families.len();
        families.sort_unstable();
        families.dedup();
        assert_eq!(before, families.len(), "duplicate metric family in:\n{text}");
    }

    #[test]
    fn overload_counters_flow_through_stats_and_publish() {
        tele_trace::enable();
        tele_trace::reset();
        let m =
            ServeMetrics { shed: 5, deadline_expired: 2, rollovers: 1, ..ServeMetrics::default() };
        let s = m.stats();
        assert_eq!((s.shed, s.deadline_expired, s.rollovers), (5, 2, 1));
        m.publish();
        let snap = tele_trace::metrics::snapshot();
        assert!(snap.counters.iter().any(|(k, v)| k == "serve.shed" && *v == 5));
        assert!(snap.counters.iter().any(|(k, v)| k == "serve.deadline_expired" && *v == 2));
        assert!(snap.counters.iter().any(|(k, v)| k == "serve.rollover" && *v == 1));
        tele_trace::reset();
        tele_trace::disable();

        let json = serde_json::to_string(&s).expect("serialize");
        let back: ServeStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!((back.shed, back.deadline_expired, back.rollovers), (5, 2, 1));
    }

    #[test]
    fn stats_roundtrip_through_json() {
        let mut m = ServeMetrics::default();
        let now = tele_trace::now_ns();
        m.record_batch(now, 4, 1, 3, 3, 2_000_000);
        m.record_request(now, 3_000_000, true);
        m.record_write_us(now, 42);
        let s = m.stats();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: ServeStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.requests, s.requests);
        assert_eq!(back.cache_hits, s.cache_hits);
        assert!((back.cache_hit_rate - s.cache_hit_rate).abs() < 1e-12);
        assert_eq!(back.request_latency.count, s.request_latency.count);
        assert_eq!(back.phases.write_us.count, 1);
        assert_eq!(back.latency_window.window_secs, s.latency_window.window_secs);
    }
}
