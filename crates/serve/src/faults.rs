//! Deterministic fault injection for the serving layer.
//!
//! Extends the PR 4 chaos-harness discipline (crates/core `faults.rs` breaks
//! training on purpose) to serving: a [`ServeFault`] rides on
//! [`SessionConfig`](crate::SessionConfig) and lets tests break the batcher
//! at a chosen point — a forward-pass panic on an exact micro-batch, or a
//! fixed per-batch stall that keeps the batcher busy while admission control
//! is exercised. Faults are addressed by the batcher's 1-based batch
//! sequence number, so every injected failure is reproducible.

/// A fault injected into the batcher, for chaos tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum ServeFault {
    /// No injected fault (production).
    #[default]
    None,
    /// Panic inside the forward pass of the given 1-based micro-batch; the
    /// session must contain the panic and keep serving later batches.
    PanicOnBatch(u64),
    /// Sleep this many milliseconds at the start of every micro-batch,
    /// simulating a slow model so queues fill deterministically.
    SlowBatch(u64),
}

impl ServeFault {
    /// Applied at the start of micro-batch `seq` (1-based), before any work.
    pub(crate) fn on_batch_start(&self, _seq: u64) {
        if let ServeFault::SlowBatch(ms) = self {
            std::thread::sleep(std::time::Duration::from_millis(*ms));
        }
    }

    /// Applied inside the forward pass of micro-batch `seq` (1-based).
    pub(crate) fn in_forward(&self, seq: u64) {
        if let ServeFault::PanicOnBatch(target) = self {
            if seq == *target {
                // panic_any (not panic!) keeps lib code free of the banned
                // formatting-panic macro while still unwinding.
                std::panic::panic_any(format!("injected fault: panic on batch {seq}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_fault_is_inert() {
        let f = ServeFault::default();
        assert_eq!(f, ServeFault::None);
        f.on_batch_start(1);
        f.in_forward(1);
    }

    #[test]
    fn panic_fault_fires_only_on_its_batch() {
        let f = ServeFault::PanicOnBatch(2);
        f.in_forward(1);
        f.in_forward(3);
        let caught = std::panic::catch_unwind(|| f.in_forward(2));
        let payload = caught.expect_err("batch 2 must panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("panic on batch 2"), "{msg}");
    }
}
