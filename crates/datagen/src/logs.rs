//! Machine-log simulation: fault episodes sampled from the ground-truth
//! DAG, producing alarm events and KPI readings (the paper's "machine log
//! data", delivered as MDAF-like packages).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::world::{AbnormalDirection, EventId, TeleWorld};

/// One record in a machine log.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// An alarm occurrence.
    Alarm {
        /// Alarm event id (catalog index).
        event: EventId,
        /// NE instance the alarm fired on.
        instance: usize,
        /// Occurrence time (time units from episode start).
        time: u32,
    },
    /// A KPI reading.
    Kpi {
        /// KPI event id (global event id: `alarms.len() + kpi index`).
        event: EventId,
        /// NE instance the KPI is measured on.
        instance: usize,
        /// Reading time.
        time: u32,
        /// The raw value.
        value: f32,
    },
}

impl LogRecord {
    /// The global event id of the record.
    pub fn event(&self) -> EventId {
        match self {
            LogRecord::Alarm { event, .. } | LogRecord::Kpi { event, .. } => *event,
        }
    }

    /// The NE instance of the record.
    pub fn instance(&self) -> usize {
        match self {
            LogRecord::Alarm { instance, .. } | LogRecord::Kpi { instance, .. } => *instance,
        }
    }

    /// The record time.
    pub fn time(&self) -> u32 {
        match self {
            LogRecord::Alarm { time, .. } | LogRecord::Kpi { time, .. } => *time,
        }
    }
}

/// One propagated fault occurrence inside an episode.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Activation {
    /// The activated event.
    pub event: EventId,
    /// The NE instance it occurred on.
    pub instance: usize,
    /// Activation time.
    pub time: u32,
    /// The activation that caused this one (index into the episode's
    /// activation list), `None` for the root.
    pub parent: Option<usize>,
}

/// A simulated fault episode: the paper's "state of a telecommunication
/// system in a time slot", with ground truth attached.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Episode {
    /// The root-cause alarm.
    pub root_event: EventId,
    /// The NE instance the root occurred on.
    pub root_instance: usize,
    /// All activations in causal order.
    pub activations: Vec<Activation>,
    /// The full machine log (alarms + KPI readings, time-sorted).
    pub records: Vec<LogRecord>,
}

impl Episode {
    /// NE instances touched by any activation.
    pub fn involved_instances(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.activations.iter().map(|a| a.instance).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct LogSimConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of episodes (≈ MDAF packages).
    pub episodes: usize,
    /// Standard deviation of KPI baseline noise.
    pub kpi_noise: f32,
    /// Magnitude of the abnormal KPI shift.
    pub kpi_shift: f32,
    /// Expected number of spurious (causally unrelated) alarms per episode
    /// — real fault states contain unrelated noise, which is what defeats
    /// pure event-identity memorization in RCA.
    pub spurious_alarms: f32,
}

impl Default for LogSimConfig {
    fn default() -> Self {
        LogSimConfig {
            seed: 31,
            episodes: 127,
            kpi_noise: 0.03,
            kpi_shift: 0.3,
            spurious_alarms: 1.2,
        }
    }
}

/// Simulates fault episodes on the world.
///
/// Each episode picks a root alarm, propagates along the causal DAG with
/// the edges' probabilities and delays, and emits the machine log: alarm
/// records for activated alarms, plus KPI readings on all involved
/// instances (abnormal where the KPI was activated, baseline noise
/// elsewhere — the co-variation signal ANEnc learns from).
pub fn simulate(world: &TeleWorld, cfg: &LogSimConfig) -> Vec<Episode> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.episodes).map(|_| simulate_episode(world, cfg, &mut rng)).collect()
}

fn simulate_episode(world: &TeleWorld, cfg: &LogSimConfig, rng: &mut StdRng) -> Episode {
    // Any alarm can start an incident (the paper: "a large number of
    // abnormal events happen every day with various causes"); propagation
    // then follows the DAG downstream of it.
    let root_event: EventId = rng.gen_range(0..world.alarms.len());
    let root_instance = pick_instance(world, world.event_ne_type(root_event), None, rng);

    let mut activations =
        vec![Activation { event: root_event, instance: root_instance, time: 0, parent: None }];
    let mut activated_events = vec![false; world.num_events()];
    activated_events[root_event] = true;

    // Breadth-first propagation over the DAG.
    let mut frontier = vec![0usize];
    while let Some(ai) = frontier.pop() {
        let act = activations[ai];
        let edges: Vec<_> = world.out_edges(act.event).cloned().collect();
        for e in edges {
            if activated_events[e.dst] || !rng.gen_bool(e.prob as f64) {
                continue;
            }
            activated_events[e.dst] = true;
            let inst = pick_instance(world, world.event_ne_type(e.dst), Some(act.instance), rng);
            let time = act.time + e.delay + rng.gen_range(0..2);
            let idx = activations.len();
            activations.push(Activation { event: e.dst, instance: inst, time, parent: Some(ai) });
            if world.is_alarm(e.dst) {
                frontier.push(idx);
            }
        }
    }

    // Spurious alarms: causally unrelated events that happen to fire in the
    // same time slot (parentless, excluded from chains and trigger pairs).
    let max_t = activations.iter().map(|a| a.time).max().unwrap_or(0);
    let n_spurious = (cfg.spurious_alarms * 2.0 * rng.gen::<f32>()) as usize;
    for _ in 0..n_spurious {
        let event: EventId = rng.gen_range(0..world.alarms.len());
        if activated_events[event] {
            continue;
        }
        activated_events[event] = true;
        let inst = pick_instance(world, world.event_ne_type(event), None, rng);
        activations.push(Activation {
            event,
            instance: inst,
            time: rng.gen_range(0..=max_t + 1),
            parent: None,
        });
    }

    // Emit the log: alarms as-is; KPI readings on every involved instance.
    let mut records = Vec::new();
    for a in &activations {
        if world.is_alarm(a.event) {
            records.push(LogRecord::Alarm { event: a.event, instance: a.instance, time: a.time });
        }
    }
    let involved: Vec<usize> = {
        let mut v: Vec<usize> = activations.iter().map(|a| a.instance).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let max_time = activations.iter().map(|a| a.time).max().unwrap_or(0);
    for kpi in &world.kpis {
        let global: EventId = world.alarms.len() + kpi.id;
        let activated_on: Option<usize> =
            activations.iter().find(|a| a.event == global).map(|a| a.instance);
        for &inst in &involved {
            if world.instances[inst].ne_type != kpi.ne_type {
                continue;
            }
            let noise = (rng.gen::<f32>() - 0.5) * 2.0 * cfg.kpi_noise;
            let value = if activated_on == Some(inst) {
                match kpi.direction {
                    AbnormalDirection::Increase => kpi.baseline + cfg.kpi_shift + noise,
                    AbnormalDirection::Decrease => (kpi.baseline - cfg.kpi_shift + noise).max(0.0),
                }
            } else {
                kpi.baseline + noise
            };
            records.push(LogRecord::Kpi { event: global, instance: inst, time: max_time, value });
        }
    }
    records.sort_by_key(|r| (r.time(), r.event()));

    Episode { root_event, root_instance, activations, records }
}

/// Wraps log records into prompt templates (paper Fig. 3) for re-training:
/// alarms become `[ALM] name | [LOC] instance`, KPI readings become
/// `[KPI] name | [NUM]  [LOC] instance` with the value in the numeric slot.
pub fn log_templates(
    world: &TeleWorld,
    episodes: &[Episode],
) -> Vec<Vec<tele_tokenizer::TemplateField>> {
    use tele_tokenizer::patterns;
    let mut out = Vec::new();
    for ep in episodes {
        for r in &ep.records {
            match r {
                LogRecord::Alarm { event, instance, .. } => {
                    out.push(patterns::alarm(
                        world.event_name(*event),
                        &world.instances[*instance].name,
                    ));
                }
                LogRecord::Kpi { event, instance, value, .. } => {
                    out.push(patterns::kpi(
                        world.event_name(*event),
                        &world.instances[*instance].name,
                        *value,
                    ));
                }
            }
        }
    }
    out
}

/// Picks an NE instance of the given type, preferring topology neighbors of
/// `near` (so propagation follows the network graph, which the EAP task's
/// topology feature relies on).
fn pick_instance(
    world: &TeleWorld,
    ne_type: usize,
    near: Option<usize>,
    rng: &mut StdRng,
) -> usize {
    if let Some(src) = near {
        let neighbors: Vec<usize> = world
            .instance_neighbors(src)
            .into_iter()
            .filter(|&i| world.instances[i].ne_type == ne_type)
            .collect();
        if !neighbors.is_empty() {
            return neighbors[rng.gen_range(0..neighbors.len())];
        }
    }
    let cands = world.instances_of_type(ne_type);
    cands[rng.gen_range(0..cands.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn episodes() -> (TeleWorld, Vec<Episode>) {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 2, episodes: 40, ..Default::default() });
        (w, eps)
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = TeleWorld::generate(WorldConfig::default());
        let cfg = LogSimConfig { seed: 4, episodes: 10, ..Default::default() };
        let a = simulate(&w, &cfg);
        let b = simulate(&w, &cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].root_event, b[0].root_event);
        assert_eq!(a[0].records, b[0].records);
    }

    #[test]
    fn roots_are_alarms_at_time_zero() {
        let (w, eps) = episodes();
        for e in &eps {
            assert!(w.is_alarm(e.root_event));
            assert_eq!(e.activations[0].event, e.root_event);
            assert_eq!(e.activations[0].time, 0);
        }
        // With roots drawn from all alarms, more root types appear than the
        // DAG-root subset alone.
        let distinct: std::collections::HashSet<_> = eps.iter().map(|e| e.root_event).collect();
        assert!(distinct.len() > w.root_alarms().len() / 2);
    }

    #[test]
    fn activation_times_respect_causality() {
        let (_, eps) = episodes();
        for ep in &eps {
            for a in &ep.activations {
                if let Some(p) = a.parent {
                    assert!(a.time > ep.activations[p].time, "child activated before parent");
                }
            }
        }
    }

    #[test]
    fn activations_follow_causal_edges() {
        let (w, eps) = episodes();
        for ep in &eps {
            for a in &ep.activations {
                if let Some(p) = a.parent {
                    let src = ep.activations[p].event;
                    assert!(
                        w.causal_edges.iter().any(|e| e.src == src && e.dst == a.event),
                        "activation without a ground-truth edge"
                    );
                }
            }
        }
    }

    #[test]
    fn spurious_alarms_are_parentless_and_marked() {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(
            &w,
            &LogSimConfig { seed: 5, episodes: 40, spurious_alarms: 2.0, ..Default::default() },
        );
        let mut saw_spurious = false;
        for ep in &eps {
            for (i, a) in ep.activations.iter().enumerate() {
                if i > 0 && a.parent.is_none() {
                    saw_spurious = true;
                    assert!(w.is_alarm(a.event), "spurious events are alarms");
                }
            }
        }
        assert!(saw_spurious, "expected spurious alarms at rate 2.0");
    }

    #[test]
    fn zero_spurious_rate_produces_none() {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(
            &w,
            &LogSimConfig { seed: 5, episodes: 20, spurious_alarms: 0.0, ..Default::default() },
        );
        for ep in &eps {
            for (i, a) in ep.activations.iter().enumerate() {
                assert!(i == 0 || a.parent.is_some());
            }
        }
    }

    #[test]
    fn abnormal_kpis_shift_from_baseline() {
        let (w, eps) = episodes();
        let mut checked = 0;
        for ep in &eps {
            let activated: Vec<(EventId, usize)> = ep
                .activations
                .iter()
                .filter(|a| !w.is_alarm(a.event))
                .map(|a| (a.event, a.instance))
                .collect();
            for r in &ep.records {
                if let LogRecord::Kpi { event, instance, value, .. } = r {
                    let kpi = w.kpi_of(*event);
                    let diff = (value - kpi.baseline).abs();
                    if activated.contains(&(*event, *instance)) {
                        assert!(diff > 0.15, "activated KPI did not shift");
                        checked += 1;
                    } else {
                        assert!(diff < 0.1, "baseline KPI shifted too far");
                    }
                }
            }
        }
        assert!(checked > 0, "no abnormal KPI readings produced");
    }

    #[test]
    fn records_are_time_sorted() {
        let (_, eps) = episodes();
        for ep in &eps {
            for w in ep.records.windows(2) {
                assert!(w[0].time() <= w[1].time());
            }
        }
    }
}
