//! One-stop dataset suite: world + corpora + logs + Tele-KG + downstream
//! datasets, generated from a scale preset.

use serde::{Deserialize, Serialize};

use crate::corpus::{extract_causal_sentences, generic_corpus, tele_corpus, CorpusConfig};
use crate::downstream::{eap::EapDataset, fct::FctDataset, rca::RcaDataset};
use crate::kg_build::{build_kg, BuiltKg};
use crate::logs::{simulate, Episode, LogSimConfig};
use crate::world::{TeleWorld, WorldConfig};

/// Scale presets for the suite.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal: for unit/integration tests (seconds).
    Smoke,
    /// Default: the experiment harness scale — downstream dataset counts
    /// close to the paper's tables, corpus scaled to CPU budget (minutes).
    Lab,
    /// Paper-count datasets with a larger corpus (tens of minutes on CPU).
    Paper,
}

impl Scale {
    /// Reads `TELE_SCALE` (`smoke` / `lab` / `paper`), defaulting to `Lab`.
    pub fn from_env() -> Self {
        match std::env::var("TELE_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            Ok("paper") => Scale::Paper,
            _ => Scale::Lab,
        }
    }

    /// The world configuration for this scale.
    pub fn world_config(self, seed: u64) -> WorldConfig {
        match self {
            Scale::Smoke => WorldConfig {
                seed,
                ne_types: 6,
                instances_per_type: 2,
                alarms: 18,
                kpis: 8,
                avg_out_degree: 1.6,
                expert_coverage: 0.7,
            },
            Scale::Lab | Scale::Paper => WorldConfig {
                seed,
                ne_types: 12,
                instances_per_type: 3,
                alarms: 60,
                kpis: 26,
                avg_out_degree: 1.8,
                expert_coverage: 0.7,
            },
        }
    }

    /// Sentence budget for the tele corpus.
    pub fn corpus_sentences(self) -> usize {
        match self {
            Scale::Smoke => 800,
            Scale::Lab => 6000,
            Scale::Paper => 20000,
        }
    }

    /// Episode budget (drives RCA graphs / EAP packages / FCT chains).
    pub fn episodes(self) -> usize {
        match self {
            Scale::Smoke => 40,
            // 127 matches the paper's #Graphs in Table III.
            Scale::Lab | Scale::Paper => 127,
        }
    }
}

/// Everything the experiments consume, generated deterministically from a
/// `(scale, seed)` pair.
pub struct Suite {
    /// The scale preset used.
    pub scale: Scale,
    /// The ground-truth world.
    pub world: TeleWorld,
    /// Tele-domain pre-training corpus.
    pub tele_corpus: Vec<String>,
    /// Generic corpus for the MacBERT-substitute baseline.
    pub generic_corpus: Vec<String>,
    /// Causal sentences extracted for re-training.
    pub causal_sentences: Vec<String>,
    /// Simulated fault episodes.
    pub episodes: Vec<Episode>,
    /// The Tele-KG with entity handles.
    pub built_kg: BuiltKg,
    /// Root-cause analysis dataset.
    pub rca: RcaDataset,
    /// Event association prediction dataset.
    pub eap: EapDataset,
    /// Fault chain tracing dataset.
    pub fct: FctDataset,
}

impl Suite {
    /// Generates the full suite.
    pub fn generate(scale: Scale, seed: u64) -> Self {
        let world = TeleWorld::generate(scale.world_config(seed));
        let corpus_cfg = CorpusConfig {
            seed: seed.wrapping_add(1),
            sentences: scale.corpus_sentences(),
            splice_fraction: 0.15,
        };
        let tele = tele_corpus(&world, &corpus_cfg);
        let generic = generic_corpus(scale.corpus_sentences(), seed.wrapping_add(2));
        let causal = extract_causal_sentences(&tele, 6);
        let episodes = simulate(
            &world,
            &LogSimConfig {
                seed: seed.wrapping_add(3),
                episodes: scale.episodes(),
                ..Default::default()
            },
        );
        let built_kg = build_kg(&world);
        let rca = RcaDataset::build(&world, &episodes);
        let eap = EapDataset::build(&world, &episodes, seed.wrapping_add(4));
        let fct = FctDataset::build(&world, &episodes, seed.wrapping_add(5));
        Suite {
            scale,
            world,
            tele_corpus: tele,
            generic_corpus: generic,
            causal_sentences: causal,
            episodes,
            built_kg,
            rca,
            eap,
            fct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_generates_quickly_and_consistently() {
        let s = Suite::generate(Scale::Smoke, 42);
        assert!(!s.tele_corpus.is_empty());
        assert!(!s.causal_sentences.is_empty());
        assert_eq!(s.rca.graphs.len(), s.episodes.len());
        assert!(!s.eap.pairs.is_empty());
        assert!(!s.fct.train.is_empty());
        let s2 = Suite::generate(Scale::Smoke, 42);
        assert_eq!(s.tele_corpus, s2.tele_corpus);
        assert_eq!(s.fct.train, s2.fct.train);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.corpus_sentences() < Scale::Lab.corpus_sentences());
        assert!(Scale::Lab.corpus_sentences() < Scale::Paper.corpus_sentences());
    }

    #[test]
    fn different_seeds_give_different_worlds() {
        let a = Suite::generate(Scale::Smoke, 1);
        let b = Suite::generate(Scale::Smoke, 2);
        assert_ne!(a.world.alarms[0].name, b.world.alarms[0].name);
    }
}
