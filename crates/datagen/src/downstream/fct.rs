//! Fault chain tracing dataset (paper Sec. V-D, Tables VII/VIII).
//!
//! Nodes are alarm-on-instance occurrences; relations are determined by the
//! NE-type pair the edge crosses (the paper: "some edges share the same
//! embedding since they connect the same network element type"); facts are
//! probabilistic quadruples `(h, r, t, s)` whose confidence comes from the
//! empirical propagation frequency. The task is link prediction over a
//! train/valid/test split of the facts.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::logs::Episode;
use crate::world::{EventId, TeleWorld};

/// A probabilistic fact `(head, relation, tail, confidence)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FctFact {
    /// Head node index.
    pub head: usize,
    /// Relation index.
    pub rel: usize,
    /// Tail node index.
    pub tail: usize,
    /// Confidence `s ∈ (0, 1]`.
    pub conf: f32,
}

/// The fault-chain tracing dataset.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FctDataset {
    /// Natural-language surface of each node (`<alarm name> on <instance>`),
    /// the input to the service-embedding encoder.
    pub node_names: Vec<String>,
    /// Underlying alarm event type of each node.
    pub node_event: Vec<EventId>,
    /// NE instance of each node.
    pub node_instance: Vec<usize>,
    /// Relation surfaces (`propagates from <TYPE> to <TYPE>`).
    pub rel_names: Vec<String>,
    /// Training facts.
    pub train: Vec<FctFact>,
    /// Validation facts.
    pub valid: Vec<FctFact>,
    /// Test facts.
    pub test: Vec<FctFact>,
}

/// Data statistics matching the columns of Table VII.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FctStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (relation types).
    pub edges: usize,
    /// Training facts.
    pub train: usize,
    /// Validation facts.
    pub valid: usize,
    /// Test facts.
    pub test: usize,
}

impl FctDataset {
    /// Builds the dataset from simulated episodes with a ~78/11/11 split.
    pub fn build(world: &TeleWorld, episodes: &[Episode], seed: u64) -> Self {
        let mut node_index: HashMap<(EventId, usize), usize> = HashMap::new();
        let mut node_names = Vec::new();
        let mut node_event = Vec::new();
        let mut node_instance = Vec::new();
        let mut rel_index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut rel_names = Vec::new();
        let mut edge_counts: HashMap<(usize, usize, usize), u32> = HashMap::new();

        let mut node_of = |event: EventId,
                           inst: usize,
                           names: &mut Vec<String>,
                           events: &mut Vec<EventId>,
                           insts: &mut Vec<usize>|
         -> usize {
            *node_index.entry((event, inst)).or_insert_with(|| {
                let id = names.len();
                names.push(format!(
                    "{} on {}",
                    world.event_name(event),
                    world.instances[inst].name
                ));
                events.push(event);
                insts.push(inst);
                id
            })
        };

        for ep in episodes {
            for a in &ep.activations {
                let Some(p) = a.parent else { continue };
                let parent = &ep.activations[p];
                // Chains run over alarms only (KPIs are symptoms, not hops).
                if !world.is_alarm(a.event) || !world.is_alarm(parent.event) {
                    continue;
                }
                let h = node_of(
                    parent.event,
                    parent.instance,
                    &mut node_names,
                    &mut node_event,
                    &mut node_instance,
                );
                let t = node_of(
                    a.event,
                    a.instance,
                    &mut node_names,
                    &mut node_event,
                    &mut node_instance,
                );
                let tp =
                    (world.instances[parent.instance].ne_type, world.instances[a.instance].ne_type);
                let r = *rel_index.entry(tp).or_insert_with(|| {
                    let id = rel_names.len();
                    rel_names.push(format!(
                        "propagates from {} to {}",
                        world.ne_types[tp.0], world.ne_types[tp.1]
                    ));
                    id
                });
                *edge_counts.entry((h, r, t)).or_default() += 1;
            }
        }

        // Confidence: observation count normalized by the max (probabilistic
        // facts from "records of experts and automatic algorithms").
        let max_count = edge_counts.values().copied().max().unwrap_or(1) as f32;
        let mut facts: Vec<FctFact> = edge_counts
            .into_iter()
            .map(|((h, r, t), c)| FctFact {
                head: h,
                rel: r,
                tail: t,
                conf: (c as f32 / max_count).clamp(0.1, 1.0),
            })
            .collect();
        facts.sort_by_key(|f| (f.head, f.rel, f.tail));
        let mut rng = StdRng::seed_from_u64(seed);
        facts.shuffle(&mut rng);

        let n = facts.len();
        let n_test = (n as f64 * 0.11).round() as usize;
        let n_valid = n_test;
        let n_train = n - n_valid - n_test;
        let train = facts[..n_train].to_vec();
        let valid = facts[n_train..n_train + n_valid].to_vec();
        let test = facts[n_train + n_valid..].to_vec();

        FctDataset { node_names, node_event, node_instance, rel_names, train, valid, test }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.rel_names.len()
    }

    /// All facts across splits.
    pub fn all_facts(&self) -> impl Iterator<Item = &FctFact> {
        self.train.iter().chain(self.valid.iter()).chain(self.test.iter())
    }

    /// Table VII statistics.
    pub fn stats(&self) -> FctStats {
        FctStats {
            nodes: self.num_nodes(),
            edges: self.num_relations(),
            train: self.train.len(),
            valid: self.valid.len(),
            test: self.test.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::{simulate, LogSimConfig};
    use crate::world::WorldConfig;

    fn dataset() -> FctDataset {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 13, episodes: 80, ..Default::default() });
        FctDataset::build(&w, &eps, 5)
    }

    #[test]
    fn splits_are_disjoint_and_cover() {
        let ds = dataset();
        let total = ds.train.len() + ds.valid.len() + ds.test.len();
        assert!(total > 20, "too few facts: {total}");
        let mut all: Vec<_> = ds.all_facts().map(|f| (f.head, f.rel, f.tail)).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate facts across splits");
        assert!(!ds.test.is_empty() && !ds.valid.is_empty());
    }

    #[test]
    fn confidences_in_range() {
        let ds = dataset();
        for f in ds.all_facts() {
            assert!(f.conf > 0.0 && f.conf <= 1.0);
        }
        // At least one fact should have max confidence.
        assert!(ds.all_facts().any(|f| (f.conf - 1.0).abs() < 1e-6));
    }

    #[test]
    fn relations_shared_by_type_pair() {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 13, episodes: 80, ..Default::default() });
        let ds = FctDataset::build(&w, &eps, 5);
        // Facts over the same (head type, tail type) share the relation.
        for f in ds.all_facts() {
            let ht = w.instances[ds.node_instance[f.head]].ne_type;
            let tt = w.instances[ds.node_instance[f.tail]].ne_type;
            let expect = format!("propagates from {} to {}", w.ne_types[ht], w.ne_types[tt]);
            assert_eq!(ds.rel_names[f.rel], expect);
        }
        assert!(ds.num_relations() < ds.all_facts().count(), "relations should be shared");
    }

    #[test]
    fn node_names_mention_alarm_and_instance() {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 13, episodes: 80, ..Default::default() });
        let ds = FctDataset::build(&w, &eps, 5);
        for (i, name) in ds.node_names.iter().enumerate() {
            assert!(name.contains(w.event_name(ds.node_event[i])));
            assert!(name.contains(&w.instances[ds.node_instance[i]].name));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = dataset();
        let b = dataset();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}
