//! Root-cause analysis dataset (paper Sec. V-B, Tables III/IV).
//!
//! Each fault episode becomes one graph: nodes are the NE instances
//! involved in the state (plus their one-hop topology neighborhood), edges
//! come from the network topology, node features count abnormal-event
//! occurrences, and the label is the NE instance the root alarm fired on.

use serde::{Deserialize, Serialize};

use crate::logs::Episode;
use crate::world::TeleWorld;

/// One telecom-system state as a labeled graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RcaGraph {
    /// Global NE instance ids of the nodes.
    pub nodes: Vec<usize>,
    /// Undirected edges as local node-index pairs.
    pub edges: Vec<(usize, usize)>,
    /// `features[i][j]` = number of times abnormal event `j` occurred on
    /// node `i` (the paper's node feature matrix `X`).
    pub features: Vec<Vec<f32>>,
    /// Local index of the labeled root-cause node.
    pub root: usize,
}

impl RcaGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// The RCA dataset: one graph per system state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RcaDataset {
    /// Labeled graphs.
    pub graphs: Vec<RcaGraph>,
    /// Feature dimensionality = number of abnormal event types.
    pub num_features: usize,
}

/// Data statistics matching the columns of Table III.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RcaStats {
    /// Number of graphs.
    pub graphs: usize,
    /// Number of features.
    pub features: usize,
    /// Average node count.
    pub avg_nodes: f64,
    /// Average edge count.
    pub avg_edges: f64,
}

impl RcaDataset {
    /// Builds the dataset from simulated episodes.
    pub fn build(world: &TeleWorld, episodes: &[Episode]) -> Self {
        let num_features = world.num_events();
        let graphs = episodes.iter().map(|ep| build_graph(world, ep, num_features)).collect();
        RcaDataset { graphs, num_features }
    }

    /// Table III statistics.
    pub fn stats(&self) -> RcaStats {
        let n = self.graphs.len().max(1) as f64;
        RcaStats {
            graphs: self.graphs.len(),
            features: self.num_features,
            avg_nodes: self.graphs.iter().map(|g| g.nodes.len() as f64).sum::<f64>() / n,
            avg_edges: self.graphs.iter().map(|g| g.edges.len() as f64).sum::<f64>() / n,
        }
    }
}

fn build_graph(world: &TeleWorld, ep: &Episode, num_features: usize) -> RcaGraph {
    // Node set: involved instances plus their one-hop neighborhood — the
    // analyst collects the whole surrounding state, not only alarmed boxes.
    let mut nodes = ep.involved_instances();
    for inst in nodes.clone() {
        for nb in world.instance_neighbors(inst) {
            if !nodes.contains(&nb) {
                nodes.push(nb);
            }
        }
    }
    nodes.sort_unstable();
    let local = |g: usize| nodes.iter().position(|&n| n == g).expect("node present");

    let mut edges = Vec::new();
    for &(a, b) in &world.topology {
        if nodes.contains(&a) && nodes.contains(&b) {
            edges.push((local(a), local(b)));
        }
    }

    let mut features = vec![vec![0.0; num_features]; nodes.len()];
    for a in &ep.activations {
        features[local(a.instance)][a.event] += 1.0;
    }

    RcaGraph { nodes: nodes.clone(), edges, features, root: local(ep.root_instance) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::{simulate, LogSimConfig};
    use crate::world::{TeleWorld, WorldConfig};

    fn dataset() -> (TeleWorld, RcaDataset) {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 7, episodes: 30, ..Default::default() });
        let ds = RcaDataset::build(&w, &eps);
        (w, ds)
    }

    #[test]
    fn one_graph_per_episode() {
        let (_, ds) = dataset();
        assert_eq!(ds.graphs.len(), 30);
    }

    #[test]
    fn root_is_valid_and_carries_root_event() {
        let w = TeleWorld::generate(WorldConfig::default());
        let eps = simulate(&w, &LogSimConfig { seed: 7, episodes: 30, ..Default::default() });
        let ds = RcaDataset::build(&w, &eps);
        for (g, ep) in ds.graphs.iter().zip(&eps) {
            assert!(g.root < g.nodes.len());
            assert_eq!(g.nodes[g.root], ep.root_instance);
            // The root node's feature row includes the root event.
            assert!(g.features[g.root][ep.root_event] >= 1.0);
        }
    }

    #[test]
    fn edges_reference_local_nodes() {
        let (_, ds) = dataset();
        for g in &ds.graphs {
            for &(a, b) in &g.edges {
                assert!(a < g.nodes.len() && b < g.nodes.len());
            }
        }
    }

    #[test]
    fn feature_rows_match_node_count() {
        let (w, ds) = dataset();
        assert_eq!(ds.num_features, w.num_events());
        for g in &ds.graphs {
            assert_eq!(g.features.len(), g.nodes.len());
            for row in &g.features {
                assert_eq!(row.len(), ds.num_features);
            }
        }
    }

    #[test]
    fn stats_are_plausible() {
        let (_, ds) = dataset();
        let s = ds.stats();
        assert_eq!(s.graphs, 30);
        assert!(s.avg_nodes > 2.0, "graphs too small: {}", s.avg_nodes);
        assert!(s.avg_edges >= 1.0);
    }
}
