//! Downstream dataset builders for the paper's three fault-analysis tasks.

pub mod eap;
pub mod fct;
pub mod rca;
