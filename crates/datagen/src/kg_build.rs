//! Builds the Tele-KG from the world's ground truth.
//!
//! Mirrors the paper's construction (Sec. II-A3): a hierarchical tele-schema
//! rooted at `Event` / `Resource`, instance-level entities for alarms, KPIs
//! and network elements, expert-recorded `trigger` relations (only the
//! `expert_known` subset of the causal DAG — expert coverage is incomplete
//! by design), plus textual and numerical attribute triples.

use tele_kg::{EntityId, Literal, Schema, TeleKg};

use crate::world::TeleWorld;

/// Well-known relation names used by the builder.
pub mod relations {
    /// Causal trigger between events.
    pub const TRIGGER: &str = "trigger";
    /// Event located at an NE type.
    pub const LOCATED_AT: &str = "locatedAt";
    /// KPI measured on an NE type.
    pub const MEASURED_ON: &str = "measuredOn";
    /// Topology adjacency between NE instances.
    pub const CONNECTED_TO: &str = "connectedTo";
    /// Instance-of between an NE instance and its type entity.
    pub const INSTANCE_OF: &str = "instanceOf";
}

/// The built KG plus the entity handles downstream code needs.
pub struct BuiltKg {
    /// The knowledge graph.
    pub kg: TeleKg,
    /// Entity of each event (alarm / KPI), indexed by global event id.
    pub event_entities: Vec<EntityId>,
    /// Entity of each NE instance.
    pub instance_entities: Vec<EntityId>,
    /// Entity of each NE type.
    pub type_entities: Vec<EntityId>,
}

/// Builds the Tele-KG for a world.
pub fn build_kg(world: &TeleWorld) -> BuiltKg {
    let mut schema = Schema::with_roots();
    let event_root = schema.event_root();
    let resource_root = schema.resource_root();
    let abnormal = schema.add_class("AbnormalEvent", event_root);
    let alarm_cls = schema.add_class("Alarm", abnormal);
    let indicator = schema.add_class("Indicator", event_root);
    let kpi_cls = schema.add_class("KPI", indicator);
    let ne_cls = schema.add_class("NetworkElement", resource_root);
    let ne_type_classes: Vec<_> =
        world.ne_types.iter().map(|t| schema.add_class(&format!("{t}Element"), ne_cls)).collect();

    let mut kg = TeleKg::new(schema);
    let trigger = kg.add_relation(relations::TRIGGER);
    let located = kg.add_relation(relations::LOCATED_AT);
    let measured = kg.add_relation(relations::MEASURED_ON);
    let connected = kg.add_relation(relations::CONNECTED_TO);
    let instance_of = kg.add_relation(relations::INSTANCE_OF);

    // NE type entities.
    let type_entities: Vec<EntityId> = world
        .ne_types
        .iter()
        .enumerate()
        .map(|(i, t)| kg.add_entity(t, ne_type_classes[i]))
        .collect();

    // NE instance entities + topology.
    let instance_entities: Vec<EntityId> = world
        .instances
        .iter()
        .map(|inst| {
            let e = kg.add_entity(&inst.name, ne_type_classes[inst.ne_type]);
            kg.add_triple(e, instance_of, type_entities[inst.ne_type]);
            e
        })
        .collect();
    for &(a, b) in &world.topology {
        kg.add_triple(instance_entities[a], connected, instance_entities[b]);
        kg.add_triple(instance_entities[b], connected, instance_entities[a]);
    }

    // The "propagation impact" expert score: how many events sit below this
    // one in the fault DAG, normalized — the numerical attribute ANEnc
    // encodes for the service embeddings.
    let impact = propagation_impact(world);

    // Event entities with attributes.
    let mut event_entities = Vec::with_capacity(world.num_events());
    for (id, a) in world.alarms.iter().enumerate() {
        let e = kg.add_entity(&a.name, alarm_cls);
        kg.add_attribute(e, "alarm code", Literal::Text(a.code.clone()));
        kg.add_attribute(e, "severity", Literal::Text(a.severity.label().to_string()));
        kg.add_attribute(e, "propagation impact", Literal::Number(impact[id]));
        kg.add_triple(e, located, type_entities[a.ne_type]);
        event_entities.push(e);
    }
    for k in &world.kpis {
        let e = kg.add_entity(&k.name, kpi_cls);
        kg.add_attribute(e, "kpi code", Literal::Text(k.code.clone()));
        kg.add_attribute(e, "baseline value", Literal::Number(k.baseline));
        kg.add_attribute(
            e,
            "propagation impact",
            Literal::Number(impact[world.alarms.len() + k.id]),
        );
        kg.add_triple(e, measured, type_entities[k.ne_type]);
        event_entities.push(e);
    }

    // Expert-known trigger relations only: the KG is an incomplete view of
    // the ground truth, as in the paper.
    for edge in world.causal_edges.iter().filter(|e| e.expert_known) {
        kg.add_triple(event_entities[edge.src], trigger, event_entities[edge.dst]);
    }

    BuiltKg { kg, event_entities, instance_entities, type_entities }
}

/// Normalized count of (transitive) downstream events per event.
fn propagation_impact(world: &TeleWorld) -> Vec<f32> {
    let n = world.num_events();
    let mut downstream = vec![0usize; n];
    for src in 0..n {
        // DFS from src.
        let mut seen = vec![false; n];
        let mut stack = vec![src];
        seen[src] = true;
        let mut count = 0;
        while let Some(u) = stack.pop() {
            for e in world.out_edges(u) {
                if !seen[e.dst] {
                    seen[e.dst] = true;
                    count += 1;
                    stack.push(e.dst);
                }
            }
        }
        downstream[src] = count;
    }
    let max = downstream.iter().copied().max().unwrap_or(1).max(1) as f32;
    downstream.iter().map(|&d| d as f32 / max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn built() -> (TeleWorld, BuiltKg) {
        let w = TeleWorld::generate(WorldConfig::default());
        let b = build_kg(&w);
        (w, b)
    }

    #[test]
    fn entity_counts() {
        let (w, b) = built();
        assert_eq!(b.event_entities.len(), w.num_events());
        assert_eq!(b.instance_entities.len(), w.instances.len());
        assert_eq!(b.type_entities.len(), w.ne_types.len());
        assert_eq!(b.kg.num_entities(), w.num_events() + w.instances.len() + w.ne_types.len());
    }

    #[test]
    fn expert_triggers_are_subset_of_ground_truth() {
        let (w, b) = built();
        let trigger = b.kg.relation(relations::TRIGGER).unwrap();
        let stored = b.kg.query(None, Some(trigger), None);
        let expert_count = w.causal_edges.iter().filter(|e| e.expert_known).count();
        assert_eq!(stored.len(), expert_count);
        assert!(expert_count < w.causal_edges.len(), "expert coverage should be partial");
        for t in stored {
            let src = b.event_entities.iter().position(|&e| e == t.head).unwrap();
            let dst = b.event_entities.iter().position(|&e| e == t.tail).unwrap();
            assert!(w.causal_edges.iter().any(|e| e.src == src && e.dst == dst));
        }
    }

    #[test]
    fn alarm_entities_typed_under_event_root() {
        let (w, b) = built();
        let event_root = b.kg.schema.event_root();
        for &e in &b.event_entities[..w.alarms.len()] {
            assert!(b.kg.schema.is_subclass_of(b.kg.class_of(e), event_root));
        }
    }

    #[test]
    fn numeric_attributes_present() {
        let (_, b) = built();
        let mut numeric = 0;
        for e in b.kg.entity_ids() {
            for (_, v) in b.kg.attributes(e) {
                if matches!(v, Literal::Number(_)) {
                    numeric += 1;
                }
            }
        }
        assert!(numeric > 0, "expected numeric attribute triples");
    }

    #[test]
    fn topology_mirrored_in_kg() {
        let (w, b) = built();
        let conn = b.kg.relation(relations::CONNECTED_TO).unwrap();
        let stored = b.kg.query(None, Some(conn), None);
        assert_eq!(stored.len(), 2 * w.topology.len());
    }

    #[test]
    fn impact_scores_normalized_and_roots_high() {
        let (w, _) = built();
        let impact = propagation_impact(&w);
        assert!(impact.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let max_idx =
            impact.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        // The most impactful event cannot be a KPI (KPIs are sinks).
        assert!(w.is_alarm(max_idx));
    }
}
