//! Corpus generation: the tele-domain pre-training corpus (substituting the
//! paper's 20M-sentence product-document corpus), the generic baseline
//! corpus (substituting MacBERT's general-domain pre-training data), and
//! the causal-sentence extraction rules of Sec. IV-A1.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::words;
use crate::world::TeleWorld;

/// Configuration for tele-corpus generation.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Target number of sentences before explicit augmentation.
    pub sentences: usize,
    /// Fraction of sentences created by splicing adjacent sentences
    /// (explicit data augmentation, Sec. III-A).
    pub splice_fraction: f32,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { seed: 23, sentences: 6000, splice_fraction: 0.15 }
    }
}

/// Generates the tele-domain corpus from the world's ground truth.
///
/// Sentence families mirror the paper's product-document content: alarm
/// profiles, KPI documentation, causal statements derived from the fault
/// DAG (using [`words::CAUSAL_KEYWORDS`]), maintenance cases, topology
/// notes, Q&A pairs and neutral filler.
pub fn tele_corpus(world: &TeleWorld, cfg: &CorpusConfig) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::with_capacity(cfg.sentences + cfg.sentences / 4);

    while out.len() < cfg.sentences {
        match rng.gen_range(0..10) {
            // Alarm profile.
            0 | 1 => {
                let a = &world.alarms[rng.gen_range(0..world.alarms.len())];
                let ne = &world.ne_types[a.ne_type];
                out.push(match rng.gen_range(0..3) {
                    0 => {
                        format!("Alarm {} indicates that {} on the {} element.", a.code, a.name, ne)
                    }
                    1 => format!(
                        "When {} the {} raises a {} severity alarm {}.",
                        a.name,
                        ne,
                        a.severity.label(),
                        a.code
                    ),
                    _ => format!(
                        "The product document for {} explains the handling procedure when {}.",
                        ne, a.name
                    ),
                });
            }
            // KPI documentation.
            2 => {
                let k = &world.kpis[rng.gen_range(0..world.kpis.len())];
                let ne = &world.ne_types[k.ne_type];
                let iface = words::INTERFACES[rng.gen_range(0..words::INTERFACES.len())];
                out.push(format!(
                    "KPI {} measures the {} on interface {} of the {} element.",
                    k.code, k.name, iface, ne
                ));
            }
            // Causal statement from the ground-truth DAG — this is the
            // signal domain pre-training can exploit and generic cannot.
            3..=5 => {
                if world.causal_edges.is_empty() {
                    continue;
                }
                let e = &world.causal_edges[rng.gen_range(0..world.causal_edges.len())];
                let kw = words::CAUSAL_KEYWORDS[rng.gen_range(0..words::CAUSAL_KEYWORDS.len())];
                let (src, dst) = (world.event_name(e.src), world.event_name(e.dst));
                // Short forms dominate: the two event names should carry
                // most of the sentence's mass so co-occurrence is learnable
                // by a small model.
                out.push(match rng.gen_range(0..5) {
                    0 | 1 => format!("{src} {kw} {dst}."),
                    2 => format!("When {src} it usually {kw} {dst}."),
                    3 => format!("Engineers observed that {src} frequently {kw} {dst}."),
                    _ => format!("In most fault cases {src} {kw} the situation where {dst}."),
                });
            }
            // Maintenance case.
            6 => {
                let a = &world.alarms[rng.gen_range(0..world.alarms.len())];
                let inst = &world.instances[rng.gen_range(0..world.instances.len())];
                out.push(format!(
                    "Daily maintenance case: on {} the operator confirmed {} and restarted the board.",
                    inst.name, a.name
                ));
            }
            // Topology note.
            7 => {
                if world.topology.is_empty() {
                    continue;
                }
                let &(x, y) = &world.topology[rng.gen_range(0..world.topology.len())];
                out.push(format!(
                    "The {} connects to the {} over a dedicated control channel.",
                    world.instances[x].name, world.instances[y].name
                ));
            }
            // Q&A pair.
            8 => {
                let a = &world.alarms[rng.gen_range(0..world.alarms.len())];
                out.push(format!(
                    "Question: what should be checked when {} ? Answer: inspect the {} and collect the logs.",
                    a.name,
                    words::COMPONENTS[rng.gen_range(0..words::COMPONENTS.len())]
                ));
            }
            // Glossary / index line: the bare event name, as appears in
            // product-document indexes. Anchors standalone-name encoding,
            // which is exactly how downstream tasks query the model.
            9 if rng.gen_bool(0.5) => {
                let e = rng.gen_range(0..world.num_events());
                out.push(format!("{}.", world.event_name(e)));
            }
            // Neutral filler connecting two unrelated events.
            _ => {
                let a = rng.gen_range(0..world.num_events());
                let b = rng.gen_range(0..world.num_events());
                if a == b {
                    continue;
                }
                let conn =
                    words::NEUTRAL_CONNECTIVES[rng.gen_range(0..words::NEUTRAL_CONNECTIVES.len())];
                out.push(format!(
                    "The report notes that {} {} {} in the weekly summary.",
                    world.event_name(a),
                    conn,
                    world.event_name(b)
                ));
            }
        }
    }

    // Explicit augmentation: splice adjacent sentences into longer samples.
    let splices = (out.len() as f32 * cfg.splice_fraction) as usize;
    for i in 0..splices {
        let j = (i * 7) % (out.len() - 1);
        out.push(format!("{} {}", out[j], out[j + 1]));
    }
    out.shuffle(&mut rng);
    out
}

/// Generates a generic (non-tele) corpus of the same size, used to
/// pre-train the stand-in for the MacBERT baseline.
pub fn generic_corpus(sentences: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..sentences)
        .map(|_| {
            let s = words::GENERIC_SUBJECTS[rng.gen_range(0..words::GENERIC_SUBJECTS.len())];
            let v = words::GENERIC_VERBS[rng.gen_range(0..words::GENERIC_VERBS.len())];
            let o = words::GENERIC_OBJECTS[rng.gen_range(0..words::GENERIC_OBJECTS.len())];
            match rng.gen_range(0..3) {
                0 => format!("Every spring {s} {v} {o}."),
                1 => format!("{s} {v} {o} during the quiet season."),
                _ => format!("Visitors remember that {s} {v} {o}."),
            }
        })
        .collect()
}

/// Causal-sentence extraction rules (paper Sec. IV-A1): keep sentences that
/// contain a causal keyword and satisfy a minimum word count; IDs like
/// `[KPI] 1929480378` / `ALM-…` codes are stripped first.
pub fn extract_causal_sentences(corpus: &[String], min_words: usize) -> Vec<String> {
    corpus
        .iter()
        .filter(|s| {
            let lower = s.to_lowercase();
            words::CAUSAL_KEYWORDS.iter().any(|k| lower.contains(k))
        })
        .map(|s| strip_ids(s))
        .filter(|s| s.split_whitespace().count() >= min_words)
        .collect()
}

/// Removes pure identifier tokens (`ALM-…`, `KPI-…`) from a sentence.
pub fn strip_ids(sentence: &str) -> String {
    sentence
        .split_whitespace()
        .filter(|w| {
            let w = w.trim_matches(|c: char| !c.is_alphanumeric() && c != '-');
            !(w.starts_with("ALM-") || w.starts_with("KPI-"))
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;

    fn world() -> TeleWorld {
        TeleWorld::generate(WorldConfig::default())
    }

    #[test]
    fn corpus_reaches_target_size() {
        let cfg = CorpusConfig { seed: 1, sentences: 500, splice_fraction: 0.1 };
        let c = tele_corpus(&world(), &cfg);
        assert!(c.len() >= 500);
        assert!(c.len() <= 600);
    }

    #[test]
    fn corpus_is_deterministic() {
        let cfg = CorpusConfig { seed: 5, sentences: 200, splice_fraction: 0.0 };
        let w = world();
        assert_eq!(tele_corpus(&w, &cfg), tele_corpus(&w, &cfg));
    }

    #[test]
    fn corpus_mentions_causal_pairs() {
        let cfg = CorpusConfig { seed: 1, sentences: 2000, splice_fraction: 0.0 };
        let w = world();
        let c = tele_corpus(&w, &cfg);
        let causal = extract_causal_sentences(&c, 5);
        assert!(
            causal.len() > c.len() / 10,
            "causal sentences underrepresented: {} of {}",
            causal.len(),
            c.len()
        );
        // Every ground-truth edge should be mentioned somewhere in a large
        // enough corpus.
        let text = c.join(" ");
        let mentioned = w
            .causal_edges
            .iter()
            .filter(|e| text.contains(w.event_name(e.src)) && text.contains(w.event_name(e.dst)))
            .count();
        assert!(mentioned as f32 >= 0.9 * w.causal_edges.len() as f32);
    }

    #[test]
    fn causal_extraction_respects_min_length() {
        let corpus = vec![
            "a causes b".to_string(),
            "this alarm causes severe packet loss downstream today".to_string(),
            "no keyword here at all in this sentence".to_string(),
        ];
        let got = extract_causal_sentences(&corpus, 5);
        assert_eq!(got.len(), 1);
        assert!(got[0].contains("packet loss"));
    }

    #[test]
    fn strip_ids_removes_codes() {
        let s = strip_ids("Alarm ALM-100072 causes KPI-1929480378 to rise");
        assert!(!s.contains("ALM-"));
        assert!(!s.contains("KPI-"));
        assert!(s.contains("causes"));
    }

    #[test]
    fn generic_corpus_avoids_tele_vocabulary() {
        let g = generic_corpus(300, 9);
        let text = g.join(" ");
        for ne in words::NE_TYPES {
            assert!(!text.contains(ne), "generic corpus leaked tele token {ne}");
        }
        for kw in ["alarm", "KPI", "session"] {
            assert!(!text.to_lowercase().contains(&kw.to_lowercase()));
        }
    }
}
