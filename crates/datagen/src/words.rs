//! Domain word pools for the synthetic tele-world.
//!
//! The generator composes alarm names, KPI names and document sentences
//! from these pools. Network-element and interface names follow real 3GPP
//! terminology so mined special tokens ("SMF", "N11", …) look like the
//! paper's examples ("RAN", "MML", "PGW", "MME", "SGW", "NF").

/// 5G-core / EPC network-element type names.
pub const NE_TYPES: &[&str] = &[
    "AMF", "SMF", "UPF", "PCF", "UDM", "AUSF", "NRF", "NSSF", "UDR", "NEF", "SGW", "PGW", "MME",
    "HSS", "PCRF", "GNB", "CU", "DU", "RRU", "BBU",
];

/// Reference-point / interface names.
pub const INTERFACES: &[&str] = &[
    "N1", "N2", "N3", "N4", "N6", "N8", "N10", "N11", "N12", "N15", "N22", "S1", "S5", "S6A",
    "S11", "X2", "XN", "F1", "E1", "NG",
];

/// Components that can fail inside a network element.
pub const COMPONENTS: &[&str] = &[
    "destination service",
    "heartbeat link",
    "signaling channel",
    "control plane",
    "user plane",
    "registration module",
    "session context",
    "license file",
    "certificate chain",
    "configuration database",
    "routing table",
    "dns resolver",
    "backup board",
    "clock source",
    "optical port",
    "message queue",
    "subscription profile",
    "policy engine",
    "charging gateway",
    "paging channel",
];

/// Failure modes paired with components to form alarm phrases.
pub const FAILURE_MODES: &[&str] = &[
    "is unreachable",
    "has failed",
    "is interrupted",
    "timed out",
    "is congested",
    "lost synchronization",
    "is overloaded",
    "was rejected",
    "is degraded",
    "went offline",
    "expired",
    "is corrupted",
    "reset unexpectedly",
    "dropped packets",
    "exceeded threshold",
    "is flapping",
];

/// Measured procedures for KPI names.
pub const PROCEDURES: &[&str] = &[
    "initial registration",
    "session establishment",
    "handover execution",
    "paging response",
    "service request",
    "bearer activation",
    "authentication exchange",
    "policy update",
    "pdu session modification",
    "subscriber lookup",
    "charging report",
    "slice selection",
];

/// Metrics paired with procedures to form KPI names.
pub const METRICS: &[&str] = &[
    "success rate",
    "request count",
    "average latency",
    "failure ratio",
    "timeout count",
    "retry rate",
    "throughput",
    "drop rate",
];

/// Causal connective phrases; sentences containing any of these are
/// extracted as causal sentences during re-training (paper Sec. IV-A1).
pub const CAUSAL_KEYWORDS: &[&str] = &[
    "leads to",
    "results in",
    "causes",
    "triggers",
    "affects",
    "is caused by",
    "is triggered by",
    "gives rise to",
    "brings about",
    "further induces",
];

/// Non-causal connective phrases for filler sentences.
pub const NEUTRAL_CONNECTIVES: &[&str] = &[
    "is documented alongside",
    "is unrelated to",
    "is monitored together with",
    "is reported near",
    "shares a dashboard with",
];

/// Multi-word domain phrases used as whole words for WWM (the paper's
/// 372k-entry proper-noun vocabulary, scaled down).
pub const DOMAIN_PHRASES: &[&str] = &[
    "network congestion points",
    "dedicated control channel",
    "session establishment reject",
    "initial registration requests",
    "quality of service",
    "network function",
    "user plane function",
    "packet data unit",
    "service level agreement",
    "fault propagation chain",
];

/// Generic (non-tele) vocabulary for the baseline corpus that stands in for
/// MacBERT's general-domain pre-training data.
pub const GENERIC_SUBJECTS: &[&str] = &[
    "the library",
    "a museum",
    "the garden",
    "the bakery",
    "a festival",
    "the orchestra",
    "a bridge",
    "the harbor",
    "a bookstore",
    "the bakery cart",
    "the village",
    "a lighthouse",
    "the market",
    "a workshop",
    "the gallery",
];

/// Generic verbs for the baseline corpus.
pub const GENERIC_VERBS: &[&str] = &[
    "opens near",
    "closes beside",
    "welcomes",
    "collects",
    "displays",
    "organizes",
    "restores",
    "celebrates",
    "hosts",
    "borrows from",
];

/// Generic objects for the baseline corpus.
pub const GENERIC_OBJECTS: &[&str] = &[
    "old paintings",
    "fresh bread",
    "quiet streets",
    "rare books",
    "spring flowers",
    "wooden boats",
    "evening concerts",
    "stone arches",
    "paper lanterns",
    "herbal tea",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for pool in [NE_TYPES, INTERFACES, COMPONENTS, FAILURE_MODES, PROCEDURES, METRICS] {
            assert!(!pool.is_empty());
            let mut v: Vec<_> = pool.to_vec();
            v.sort_unstable();
            v.dedup();
            assert_eq!(v.len(), pool.len(), "duplicate entries in pool");
        }
    }

    #[test]
    fn ne_types_are_abbreviation_like() {
        for t in NE_TYPES {
            assert!(tele_tokenizer::is_abbreviation_like(t), "{t} not abbreviation-like");
        }
    }

    #[test]
    fn causal_and_neutral_disjoint() {
        for c in CAUSAL_KEYWORDS {
            assert!(!NEUTRAL_CONNECTIVES.contains(c));
        }
    }
}
