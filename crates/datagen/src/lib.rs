//! # tele-datagen
//!
//! The synthetic tele-world that substitutes for the paper's proprietary
//! Huawei data (see DESIGN.md §2). One ground-truth [`TeleWorld`] — NE
//! catalogs, topology and a fault-propagation DAG — derives everything:
//!
//! - [`corpus`]: the tele-domain pre-training corpus, the generic baseline
//!   corpus, and the causal-sentence extraction rules,
//! - [`logs`]: fault-episode simulation producing machine logs (alarms +
//!   co-varying KPI readings),
//! - [`kg_build`]: the Tele-KG with expert-known trigger triples and
//!   numeric attributes,
//! - [`downstream`]: the RCA / EAP / FCT dataset builders with the
//!   statistics of Tables III, V and VII,
//! - [`Suite`]: a one-stop deterministic bundle at a chosen [`Scale`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod corpus;
pub mod downstream;
pub mod extensions;
pub mod kg_build;
pub mod logs;
mod suite;
pub mod words;
mod world;

pub use suite::{Scale, Suite};
pub use world::{
    AbnormalDirection, AlarmType, CausalEdge, EventId, KpiType, NeInstance, Severity, TeleWorld,
    WorldConfig,
};
