//! Future-work data sources (paper Sec. IV-B): signaling flows and
//! configuration data.
//!
//! The paper: "Other data sources like signaling flow and configuration
//! data are temporarily not considered in this paper. We leave it as the
//! future work." This module implements both as opt-in extensions: their
//! templates can be appended to the stage-2 mask-reconstruction pool
//! (`RetrainData::log_templates`) without any trainer changes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tele_tokenizer::{PromptToken, TemplateField};

use crate::words;
use crate::world::TeleWorld;

/// One step of a signaling procedure: a message between two NE instances.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SignalingStep {
    /// Sending NE instance.
    pub from: usize,
    /// Receiving NE instance.
    pub to: usize,
    /// The reference-point / interface name.
    pub interface: String,
    /// Message name, e.g. "registration request".
    pub message: String,
    /// Whether the step failed (set on flows traversing faulty elements).
    pub failed: bool,
}

/// A signaling flow: a named procedure and its message sequence.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SignalingFlow {
    /// Procedure name, e.g. "initial registration".
    pub procedure: String,
    /// Ordered message steps.
    pub steps: Vec<SignalingStep>,
}

/// Configuration for signaling-flow generation.
#[derive(Clone, Debug)]
pub struct SignalingConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of flows to generate.
    pub flows: usize,
    /// Probability that a step fails when traversing a fault.
    pub failure_rate: f64,
}

impl Default for SignalingConfig {
    fn default() -> Self {
        SignalingConfig { seed: 71, flows: 120, failure_rate: 0.15 }
    }
}

/// Generates signaling flows over the world's topology: each flow walks a
/// path of topology-adjacent instances, exchanging procedure messages over
/// named interfaces.
pub fn signaling_flows(world: &TeleWorld, cfg: &SignalingConfig) -> Vec<SignalingFlow> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.flows)
        .map(|_| {
            let proc_idx = rng.gen_range(0..words::PROCEDURES.len());
            let procedure = words::PROCEDURES[proc_idx].to_string();
            let hops = rng.gen_range(2..5);
            let mut at = rng.gen_range(0..world.instances.len());
            let mut steps = Vec::with_capacity(hops);
            for h in 0..hops {
                let neighbors = world.instance_neighbors(at);
                if neighbors.is_empty() {
                    break;
                }
                let next = neighbors[rng.gen_range(0..neighbors.len())];
                let iface = words::INTERFACES[rng.gen_range(0..words::INTERFACES.len())];
                let message = match h {
                    0 => format!("{procedure} request"),
                    _ if h == hops - 1 => format!("{procedure} response"),
                    _ => format!("{procedure} update"),
                };
                steps.push(SignalingStep {
                    from: at,
                    to: next,
                    interface: iface.to_string(),
                    message,
                    failed: rng.gen_bool(cfg.failure_rate),
                });
                at = next;
            }
            SignalingFlow { procedure, steps }
        })
        .filter(|f| !f.steps.is_empty())
        .collect()
}

/// Wraps signaling steps into prompt templates using the `[SIG]` extension
/// token: `[SIG] message over interface | [LOC] from | [LOC] to`.
pub fn signaling_templates(world: &TeleWorld, flows: &[SignalingFlow]) -> Vec<Vec<TemplateField>> {
    flows
        .iter()
        .flat_map(|f| f.steps.iter())
        .map(|s| {
            let status = if s.failed { "failed" } else { "succeeded" };
            vec![
                TemplateField::text(
                    PromptToken::Sig,
                    format!("{} over {} {}", s.message, s.interface, status),
                ),
                TemplateField::text(PromptToken::Loc, &world.instances[s.from].name),
                TemplateField::text(PromptToken::Loc, &world.instances[s.to].name),
            ]
        })
        .collect()
}

/// One NE instance's configuration table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfigTable {
    /// The instance.
    pub instance: usize,
    /// `(parameter name, value)` rows.
    pub params: Vec<(String, f32)>,
}

/// Configuration parameters per NE type (name, plausible range).
const CONFIG_PARAMS: &[(&str, f32, f32)] = &[
    ("max sessions", 1000.0, 50000.0),
    ("heartbeat interval", 1.0, 30.0),
    ("retry limit", 1.0, 8.0),
    ("timer t3510", 5.0, 60.0),
    ("bandwidth limit", 100.0, 10000.0),
    ("queue depth", 64.0, 4096.0),
];

/// Generates configuration tables for every NE instance.
pub fn config_tables(world: &TeleWorld, seed: u64) -> Vec<ConfigTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    world
        .instances
        .iter()
        .map(|inst| {
            let params = CONFIG_PARAMS
                .iter()
                .map(|&(name, lo, hi)| (name.to_string(), rng.gen_range(lo..hi)))
                .collect();
            ConfigTable { instance: inst.id, params }
        })
        .collect()
}

/// Wraps configuration rows into prompt templates with numeric slots:
/// `[ENT] instance | [ATTR] parameter | [NUM]` — extra training signal for
/// the adaptive numeric encoder.
pub fn config_templates(world: &TeleWorld, tables: &[ConfigTable]) -> Vec<Vec<TemplateField>> {
    tables
        .iter()
        .flat_map(|t| {
            let name = world.instances[t.instance].name.clone();
            t.params.iter().map(move |(param, value)| {
                vec![
                    TemplateField::text(PromptToken::Ent, name.clone()),
                    TemplateField::numeric(PromptToken::Attr, param.clone(), *value),
                ]
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::WorldConfig;
    use tele_tokenizer::FieldContent;

    fn world() -> TeleWorld {
        TeleWorld::generate(WorldConfig::default())
    }

    #[test]
    fn flows_walk_topology_edges() {
        let w = world();
        let flows = signaling_flows(&w, &SignalingConfig::default());
        assert!(!flows.is_empty());
        for f in &flows {
            for s in &f.steps {
                assert!(
                    w.instance_neighbors(s.from).contains(&s.to),
                    "signaling step jumps a non-edge"
                );
            }
            // Steps chain: each step starts where the previous ended.
            for pair in f.steps.windows(2) {
                assert_eq!(pair[0].to, pair[1].from);
            }
        }
    }

    #[test]
    fn flows_are_deterministic() {
        let w = world();
        let a = signaling_flows(&w, &SignalingConfig::default());
        let b = signaling_flows(&w, &SignalingConfig::default());
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].steps.len(), b[0].steps.len());
    }

    #[test]
    fn signaling_templates_use_sig_token() {
        let w = world();
        let flows = signaling_flows(&w, &SignalingConfig { flows: 5, ..Default::default() });
        let templates = signaling_templates(&w, &flows);
        assert!(!templates.is_empty());
        for t in &templates {
            assert_eq!(t[0].kind, PromptToken::Sig);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn config_tables_cover_all_instances() {
        let w = world();
        let tables = config_tables(&w, 5);
        assert_eq!(tables.len(), w.instances.len());
        for t in &tables {
            assert_eq!(t.params.len(), CONFIG_PARAMS.len());
            for ((name, value), &(pname, lo, hi)) in t.params.iter().zip(CONFIG_PARAMS) {
                assert_eq!(name, pname);
                assert!(*value >= lo && *value <= hi);
            }
        }
    }

    #[test]
    fn config_templates_carry_numeric_slots() {
        let w = world();
        let tables = config_tables(&w, 5);
        let templates = config_templates(&w, &tables);
        assert_eq!(templates.len(), w.instances.len() * CONFIG_PARAMS.len());
        for t in &templates {
            assert!(matches!(t[1].content, FieldContent::Numeric { .. }));
        }
    }
}
