//! The ground-truth tele-world: catalogs, topology and the fault DAG.
//!
//! Everything else — corpora, machine logs, the Tele-KG and the three
//! downstream datasets — is *derived* from one [`TeleWorld`], so the causal
//! signal a model can learn during pre-training is, by construction, the
//! same signal the downstream tasks test for. This mirrors the paper's
//! setting, where product documents, expert KG triples and fault cases all
//! describe one underlying telecom network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::words;

/// Alarm severity levels.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Severity {
    /// Service-affecting.
    Critical,
    /// Degradation.
    Major,
    /// Warning only.
    Minor,
}

impl Severity {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Critical => "critical",
            Severity::Major => "major",
            Severity::Minor => "minor",
        }
    }
}

/// An alarm type in the catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AlarmType {
    /// Catalog index.
    pub id: usize,
    /// Alarm code, e.g. `ALM-100072`.
    pub code: String,
    /// Natural-language name, e.g. "The NF destination service is unreachable".
    pub name: String,
    /// Index into the world's NE-type list.
    pub ne_type: usize,
    /// Severity level.
    pub severity: Severity,
}

/// Which direction a KPI moves when its element is affected by a fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AbnormalDirection {
    /// The value rises abnormally (e.g. request counts).
    Increase,
    /// The value falls abnormally (e.g. success rates).
    Decrease,
}

/// A KPI type in the catalog.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KpiType {
    /// Catalog index.
    pub id: usize,
    /// KPI code, e.g. `KPI-1929480378`.
    pub code: String,
    /// Natural-language name, e.g. "success rate of initial registration".
    pub name: String,
    /// Index into the world's NE-type list.
    pub ne_type: usize,
    /// Normal operating value (before min-max normalization).
    pub baseline: f32,
    /// Abnormal movement direction.
    pub direction: AbnormalDirection,
}

/// A global event id: alarms come first, then KPIs.
pub type EventId = usize;

/// A ground-truth causal edge in the fault-propagation DAG.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CausalEdge {
    /// Source event (always an alarm).
    pub src: EventId,
    /// Destination event (alarm or KPI).
    pub dst: EventId,
    /// Propagation probability per episode.
    pub prob: f32,
    /// Propagation delay in time units.
    pub delay: u32,
    /// Whether tele experts have already recorded this edge in the Tele-KG
    /// (the paper notes low-frequency relationships escape expert coverage).
    pub expert_known: bool,
}

/// A deployed network-element instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NeInstance {
    /// Instance index.
    pub id: usize,
    /// Instance name, e.g. `SMF-03`.
    pub name: String,
    /// Index into the world's NE-type list.
    pub ne_type: usize,
}

/// Size parameters for world generation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorldConfig {
    /// RNG seed; the whole world is a pure function of the config.
    pub seed: u64,
    /// Number of NE types used (≤ the pool size).
    pub ne_types: usize,
    /// NE instances per type (approximate; at least one each).
    pub instances_per_type: usize,
    /// Number of alarm types.
    pub alarms: usize,
    /// Number of KPI types.
    pub kpis: usize,
    /// Average causal out-degree of an alarm.
    pub avg_out_degree: f32,
    /// Fraction of causal edges known to experts (recorded in Tele-KG).
    pub expert_coverage: f32,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 17,
            ne_types: 12,
            instances_per_type: 3,
            alarms: 60,
            kpis: 26,
            avg_out_degree: 1.8,
            expert_coverage: 0.7,
        }
    }
}

/// The generated world: catalogs, instances, topology and the causal DAG.
#[derive(Clone, Serialize, Deserialize)]
pub struct TeleWorld {
    /// The configuration that generated this world.
    pub config: WorldConfig,
    /// NE type names in use (prefix of [`words::NE_TYPES`]).
    pub ne_types: Vec<String>,
    /// Alarm catalog.
    pub alarms: Vec<AlarmType>,
    /// KPI catalog.
    pub kpis: Vec<KpiType>,
    /// Deployed instances.
    pub instances: Vec<NeInstance>,
    /// Undirected topology edges between instances (index pairs).
    pub topology: Vec<(usize, usize)>,
    /// The ground-truth fault-propagation DAG.
    pub causal_edges: Vec<CausalEdge>,
}

impl TeleWorld {
    /// Generates a world deterministically from its config.
    pub fn generate(config: WorldConfig) -> Self {
        assert!(config.ne_types >= 2 && config.ne_types <= words::NE_TYPES.len());
        assert!(config.alarms >= 4, "need at least a few alarm types");
        let mut rng = StdRng::seed_from_u64(config.seed);

        let ne_types: Vec<String> =
            words::NE_TYPES[..config.ne_types].iter().map(|s| s.to_string()).collect();

        // Alarm catalog: unique (component, failure mode) phrases.
        let mut phrases: Vec<(usize, usize)> = (0..words::COMPONENTS.len())
            .flat_map(|c| (0..words::FAILURE_MODES.len()).map(move |f| (c, f)))
            .collect();
        phrases.shuffle(&mut rng);
        assert!(config.alarms <= phrases.len(), "alarm count exceeds phrase space");
        let alarms: Vec<AlarmType> = phrases[..config.alarms]
            .iter()
            .enumerate()
            .map(|(id, &(c, f))| {
                let ne_type = rng.gen_range(0..ne_types.len());
                let severity = match rng.gen_range(0..3) {
                    0 => Severity::Critical,
                    1 => Severity::Major,
                    _ => Severity::Minor,
                };
                AlarmType {
                    id,
                    code: format!("ALM-{}", 100000 + id),
                    name: format!("the {} {}", words::COMPONENTS[c], words::FAILURE_MODES[f]),
                    ne_type,
                    severity,
                }
            })
            .collect();

        // KPI catalog: unique (metric, procedure) names.
        let mut kpi_pairs: Vec<(usize, usize)> = (0..words::METRICS.len())
            .flat_map(|m| (0..words::PROCEDURES.len()).map(move |p| (m, p)))
            .collect();
        kpi_pairs.shuffle(&mut rng);
        assert!(config.kpis <= kpi_pairs.len(), "kpi count exceeds name space");
        let kpis: Vec<KpiType> = kpi_pairs[..config.kpis]
            .iter()
            .enumerate()
            .map(|(id, &(m, p))| {
                let direction = if words::METRICS[m].contains("rate")
                    && words::METRICS[m].contains("success")
                {
                    AbnormalDirection::Decrease
                } else if rng.gen_bool(0.5) {
                    AbnormalDirection::Increase
                } else {
                    AbnormalDirection::Decrease
                };
                KpiType {
                    id,
                    code: format!("KPI-{}", 1_900_000 + id),
                    name: format!("{} of {}", words::METRICS[m], words::PROCEDURES[p]),
                    ne_type: rng.gen_range(0..ne_types.len()),
                    baseline: rng.gen_range(0.3..0.7),
                    direction,
                }
            })
            .collect();

        // Instances: at least one per type.
        let mut instances = Vec::new();
        for (t, _) in ne_types.iter().enumerate() {
            for k in 0..config.instances_per_type.max(1) {
                let id = instances.len();
                instances.push(NeInstance {
                    id,
                    name: format!("{}-{:02}", ne_types[t], k + 1),
                    ne_type: t,
                });
            }
        }

        // Topology: spanning tree + extra random edges (connected).
        let n = instances.len();
        let mut topology = Vec::new();
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for i in 1..n {
            let parent = order[rng.gen_range(0..i)];
            topology.push((order[i].min(parent), order[i].max(parent)));
        }
        let extra = n; // roughly doubles the edge count
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let e = (a.min(b), a.max(b));
                if !topology.contains(&e) {
                    topology.push(e);
                }
            }
        }

        // Causal DAG over a random topological order: alarms may trigger
        // later alarms and KPIs; KPIs are sinks.
        let num_events = alarms.len() + kpis.len();
        let mut topo_order: Vec<EventId> = (0..alarms.len()).collect();
        topo_order.shuffle(&mut rng);
        let mut causal_edges = Vec::new();
        let target_edges = (alarms.len() as f32 * config.avg_out_degree) as usize;
        let mut tries = 0;
        while causal_edges.len() < target_edges && tries < target_edges * 60 {
            tries += 1;
            // Source: position in the alarm order; destination: later alarm
            // or any KPI (30% of edges point at KPIs).
            let si = rng.gen_range(0..topo_order.len().saturating_sub(1).max(1));
            let src = topo_order[si];
            let dst: EventId = if rng.gen_bool(0.3) && !kpis.is_empty() {
                alarms.len() + rng.gen_range(0..kpis.len())
            } else {
                let di = rng.gen_range(si + 1..topo_order.len());
                topo_order[di]
            };
            if src == dst || causal_edges.iter().any(|e: &CausalEdge| e.src == src && e.dst == dst)
            {
                continue;
            }
            causal_edges.push(CausalEdge {
                src,
                dst,
                prob: rng.gen_range(0.55..0.95),
                delay: rng.gen_range(1..6),
                expert_known: rng.gen_bool(config.expert_coverage as f64),
            });
        }
        debug_assert!(causal_edges.iter().all(|e| e.dst < num_events));

        TeleWorld { config, ne_types, alarms, kpis, instances, topology, causal_edges }
    }

    /// Total number of event types (alarms + KPIs).
    pub fn num_events(&self) -> usize {
        self.alarms.len() + self.kpis.len()
    }

    /// True if `e` is an alarm id (vs. a KPI id).
    pub fn is_alarm(&self, e: EventId) -> bool {
        e < self.alarms.len()
    }

    /// The KPI behind a KPI event id.
    pub fn kpi_of(&self, e: EventId) -> &KpiType {
        &self.kpis[e - self.alarms.len()]
    }

    /// The natural-language name of an event.
    pub fn event_name(&self, e: EventId) -> &str {
        if self.is_alarm(e) {
            &self.alarms[e].name
        } else {
            &self.kpi_of(e).name
        }
    }

    /// The code (`ALM-…` / `KPI-…`) of an event.
    pub fn event_code(&self, e: EventId) -> &str {
        if self.is_alarm(e) {
            &self.alarms[e].code
        } else {
            &self.kpi_of(e).code
        }
    }

    /// The NE type index an event lives on.
    pub fn event_ne_type(&self, e: EventId) -> usize {
        if self.is_alarm(e) {
            self.alarms[e].ne_type
        } else {
            self.kpi_of(e).ne_type
        }
    }

    /// Outgoing causal edges of an event.
    pub fn out_edges(&self, e: EventId) -> impl Iterator<Item = &CausalEdge> {
        self.causal_edges.iter().filter(move |c| c.src == e)
    }

    /// Alarms with no incoming causal edge — the possible root causes.
    pub fn root_alarms(&self) -> Vec<EventId> {
        (0..self.alarms.len()).filter(|&a| !self.causal_edges.iter().any(|e| e.dst == a)).collect()
    }

    /// The causal depth of every event: roots at 0, descendants at
    /// 1 + max(parent depths). Used for numeric "expert score" attributes.
    pub fn causal_depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.num_events()];
        // Edges only go forward in some topological order, so a few sweeps
        // converge (bounded by the longest chain).
        for _ in 0..self.num_events() {
            let mut changed = false;
            for e in &self.causal_edges {
                if depth[e.dst] < depth[e.src] + 1 {
                    depth[e.dst] = depth[e.src] + 1;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        depth
    }

    /// Instances of a given NE type.
    pub fn instances_of_type(&self, ne_type: usize) -> Vec<usize> {
        self.instances.iter().filter(|i| i.ne_type == ne_type).map(|i| i.id).collect()
    }

    /// Neighbor instances in the topology.
    pub fn instance_neighbors(&self, inst: usize) -> Vec<usize> {
        self.topology
            .iter()
            .filter_map(|&(a, b)| {
                if a == inst {
                    Some(b)
                } else if b == inst {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for TeleWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TeleWorld({} NE types, {} instances, {} alarms, {} KPIs, {} causal edges)",
            self.ne_types.len(),
            self.instances.len(),
            self.alarms.len(),
            self.kpis.len(),
            self.causal_edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> TeleWorld {
        TeleWorld::generate(WorldConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.alarms.len(), b.alarms.len());
        assert_eq!(a.causal_edges.len(), b.causal_edges.len());
        assert_eq!(a.alarms[0].name, b.alarms[0].name);
        assert_eq!(a.causal_edges[0].src, b.causal_edges[0].src);
    }

    #[test]
    fn alarm_names_unique() {
        let w = world();
        let mut names: Vec<_> = w.alarms.iter().map(|a| &a.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), w.alarms.len());
    }

    #[test]
    fn dag_is_acyclic() {
        let w = world();
        // Kahn's algorithm must consume all events.
        let n = w.num_events();
        let mut indeg = vec![0usize; n];
        for e in &w.causal_edges {
            indeg[e.dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for e in w.causal_edges.iter().filter(|e| e.src == u) {
                indeg[e.dst] -= 1;
                if indeg[e.dst] == 0 {
                    queue.push(e.dst);
                }
            }
        }
        assert_eq!(seen, n, "causal graph has a cycle");
    }

    #[test]
    fn kpis_are_sinks() {
        let w = world();
        for e in &w.causal_edges {
            assert!(w.is_alarm(e.src), "KPI {} has outgoing edge", e.src);
        }
    }

    #[test]
    fn roots_exist_and_have_no_parents() {
        let w = world();
        let roots = w.root_alarms();
        assert!(!roots.is_empty());
        for r in roots {
            assert!(!w.causal_edges.iter().any(|e| e.dst == r));
        }
    }

    #[test]
    fn topology_is_connected() {
        let w = world();
        let n = w.instances.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for v in w.instance_neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "topology is disconnected");
    }

    #[test]
    fn depths_increase_along_edges() {
        let w = world();
        let d = w.causal_depths();
        for e in &w.causal_edges {
            assert!(d[e.dst] > d[e.src], "depth not monotone along edge");
        }
    }

    #[test]
    fn every_type_has_instances() {
        let w = world();
        for t in 0..w.ne_types.len() {
            assert!(!w.instances_of_type(t).is_empty());
        }
    }
}
