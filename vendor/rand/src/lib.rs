//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates-io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] (seeded,
//! deterministic), [`rngs::mock::StepRng`], the [`Rng`] extension methods
//! `gen`, `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — a different stream
//! than upstream's ChaCha12, but with the same determinism guarantee: a
//! given seed always produces the same sequence on every platform.

/// Low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be created from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of type `T` from the "standard" distribution
/// (unit interval for floats, full range for integers).
pub trait Standard01: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard01 for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard01 for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard01 for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard01 for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open or closed interval.
pub trait SampleUniform: Sized {
    /// Draws from `[lo, hi)`, or `[lo, hi]` when `inclusive`. Panics on an
    /// empty interval.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64/usize domain.
                    return rng.next_u64() as $t;
                }
                let v = bounded(rng, span as u64);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let unit = <$t as Standard01>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`. Panics on empty ranges.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Uniform value in `[0, span)` by rejection sampling (unbiased).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard01>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete RNG implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256** seeded via
    /// SplitMix64. Fast, high-quality, and reproducible from a `u64` seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        //! Mock RNGs for tests.

        use super::super::RngCore;

        /// Arithmetic-sequence RNG: yields `initial`, `initial + increment`, …
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a mock RNG counting up from `initial` by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{bounded, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..=4u64);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
