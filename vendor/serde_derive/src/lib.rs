//! Derive macros for the vendored serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build has
//! no `syn`/`quote`), covering the shapes this workspace derives:
//!
//! - named-field structs (any field visibility, doc comments)
//! - tuple structs (newtype structs serialize transparently)
//! - unit structs
//! - enums with unit, tuple and struct variants (externally tagged,
//!   matching serde's default representation)
//! - the `#[serde(from = "T", into = "T")]` container attribute
//!
//! Generic types are intentionally unsupported and panic at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by rendering into a `serde::Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = if let Some(into_ty) = &item.into_ty {
        format!(
            "let proxy: {into_ty} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        serialize_body(&item)
    };
    let name = &item.name;
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` by reading back from a `serde::Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = if let Some(from_ty) = &item.from_ty {
        format!(
            "let proxy: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
             ::core::result::Result::Ok(::core::convert::From::from(proxy))"
        )
    } else {
        deserialize_body(&item)
    };
    let name = &item.name;
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

enum Kind {
    NamedStruct(Vec<String>),
    /// Tuple struct with this many fields.
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from_ty = None;
    let mut into_ty = None;

    // Outer attributes: `#[...]`, looking for `#[serde(from = "T", into = "T")]`.
    while is_punct(tokens.get(i), '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            parse_serde_attr(g.stream(), &mut from_ty, &mut into_ty);
        }
        i += 2;
    }

    // Visibility: `pub` optionally followed by `(crate)` etc.
    if is_ident(tokens.get(i), "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let is_enum = if is_ident(tokens.get(i), "struct") {
        false
    } else if is_ident(tokens.get(i), "enum") {
        true
    } else {
        panic!("serde derive: expected `struct` or `enum`, found {:?}", tokens.get(i));
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;

    if is_punct(tokens.get(i), '<') {
        panic!("serde derive shim does not support generic type `{name}`");
    }

    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: expected enum body, found {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde derive: expected struct body, found {other:?}"),
        }
    };

    Item { name, kind, from_ty, into_ty }
}

/// Extracts `from`/`into` types out of a `serde(...)` attribute group.
fn parse_serde_attr(attr: TokenStream, from_ty: &mut Option<String>, into_ty: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    if !is_ident(tokens.first(), "serde") {
        return;
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if let (Some(TokenTree::Ident(key)), true, Some(TokenTree::Literal(lit))) =
            (args.get(i), is_punct(args.get(i + 1), '='), args.get(i + 2))
        {
            let ty = strip_quotes(&lit.to_string());
            match key.to_string().as_str() {
                "from" => *from_ty = Some(ty),
                "into" => *into_ty = Some(ty),
                other => panic!("serde derive shim: unsupported serde attribute `{other}`"),
            }
            i += 3;
        } else {
            i += 1;
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde derive: expected field name, found {other:?}"),
        }
        i += 1;
        assert!(is_punct(tokens.get(i), ':'), "serde derive: expected `:` after field name");
        i = skip_type(&tokens, i + 1);
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type(&tokens, i);
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if is_punct(tokens.get(i), ',') {
            i += 1;
        }
    }
    variants
}

/// Skips any `#[...]` attributes and a `pub`/`pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    while is_punct(tokens.get(i), '#') {
        i += 2; // `#` + bracket group
    }
    if is_ident(tokens.get(i), "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Skips a type, honouring nested `<...>` so commas inside generics don't
/// terminate the field. Returns the index of the token after the type.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    i
}

fn is_punct(token: Option<&TokenTree>, ch: char) -> bool {
    matches!(token, Some(TokenTree::Punct(p)) if p.as_char() == ch)
}

fn is_ident(token: Option<&TokenTree>, text: &str) -> bool {
    matches!(token, Some(TokenTree::Ident(id)) if id.to_string() == text)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Obj(::std::vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Arr(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Obj(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Obj(::std::vec![{entries}]))]),",
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    }
}

fn deserialize_body(item: &Item) -> String {
    let name = &item.name;
    match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\"))?,"))
                .collect();
            format!(
                "if v.as_obj().is_none() {{\n\
                     return ::core::result::Result::Err(\
                         ::serde::DeError::expected(\"object for struct {name}\", v));\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{\n{}\n}})",
                inits.join("\n")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| \
                     ::serde::DeError::expected(\"array for tuple struct {name}\", v))?;\n\
                 if items.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::DeError(::std::format!(\
                         \"expected {n} fields for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = Vec::new();
            let mut tagged_arms = Vec::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push(format!(
                        "\"{vname}\" => return ::core::result::Result::Ok({name}::{vname}),"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push(format!(
                        "\"{vname}\" => return ::core::result::Result::Ok(\
                         {name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => {{\n\
                                 let items = payload.as_arr().ok_or_else(|| \
                                     ::serde::DeError::expected(\
                                         \"array for variant {name}::{vname}\", payload))?;\n\
                                 if items.len() != {n} {{\n\
                                     return ::core::result::Result::Err(::serde::DeError(\
                                         ::std::format!(\"expected {n} fields for \
                                         {name}::{vname}, found {{}}\", items.len())));\n\
                                 }}\n\
                                 return ::core::result::Result::Ok({name}::{vname}({}));\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                     payload.field(\"{f}\"))?,"
                                )
                            })
                            .collect();
                        tagged_arms.push(format!(
                            "\"{vname}\" => return ::core::result::Result::Ok(\
                             {name}::{vname} {{\n{}\n}}),",
                            inits.join("\n")
                        ));
                    }
                }
            }
            format!(
                "if let ::core::option::Option::Some(tag) = v.as_str() {{\n\
                     match tag {{\n{unit}\n_ => {{}}\n}}\n\
                 }}\n\
                 if let ::core::option::Option::Some(entries) = v.as_obj() {{\n\
                     if entries.len() == 1 {{\n\
                         let (tag, payload) = &entries[0];\n\
                         match tag.as_str() {{\n{tagged}\n_ => {{}}\n}}\n\
                     }}\n\
                 }}\n\
                 ::core::result::Result::Err(\
                     ::serde::DeError::expected(\"variant of {name}\", v))",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    }
}
