//! Offline drop-in subset of `criterion`.
//!
//! Provides the `Criterion` builder, `bench_function` with `iter` /
//! `iter_batched`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple warm-up +
//! fixed-sample loop reporting min/median/mean per iteration — adequate
//! for the workspace's relative comparisons, with none of upstream's
//! statistical machinery.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark: hands a [`Bencher`] to `f` and prints timings.
    /// A command-line argument filters benchmarks by substring, matching
    /// criterion's CLI behaviour.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<f64>,
}

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; the shim always runs setup once per timed iteration,
/// excluded from the measurement).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` repeatedly, recording nanoseconds per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses, and estimate how
        // many calls fit in one sample so cheap routines aren't swamped by
        // timer overhead.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples.push(nanos);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call, then one timed call per sample.
        std::hint::black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<48} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{name:<48} min {:>12} median {:>12} mean {:>12}",
            format_nanos(min),
            format_nanos(median),
            format_nanos(mean),
        );
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.filter = None;
        let mut ran = false;
        c.bench_function("smoke/iter", |b| {
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default()
            .sample_size(4)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        let mut setups = 0u32;
        c.bench_function("smoke/batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::LargeInput,
            );
        });
        assert_eq!(setups, 5); // 1 warm-up + 4 samples
    }

    #[test]
    fn format_scales() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
    }
}
