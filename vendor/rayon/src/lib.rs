//! Offline drop-in subset of `rayon`: exactly the
//! `par_chunks_mut(..).enumerate().for_each(..)` pipeline the tensor
//! kernels use, implemented with `std::thread::scope` over the machine's
//! available parallelism.

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::ParallelSliceMut;
}

/// Slices whose mutable chunks can be processed in parallel.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into non-overlapping mutable chunks of `chunk_size` elements
    /// (last chunk may be shorter), processed in parallel on `for_each`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ParChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumChunksMut<'a, T> {
        EnumChunksMut { chunks: self.chunks.into_iter().enumerate().collect() }
    }

    /// Runs `f` on every chunk, distributing chunks across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        run_parallel(self.chunks, &|c| f(c));
    }
}

/// Enumerated parallel iterator over mutable chunks.
pub struct EnumChunksMut<'a, T> {
    chunks: Vec<(usize, &'a mut [T])>,
}

impl<T: Send> EnumChunksMut<'_, T> {
    /// Runs `f` on every `(index, chunk)` pair, distributing across threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        run_parallel(self.chunks, &|(i, c)| f((i, c)));
    }
}

/// Distributes `items` round-robin over up to `available_parallelism`
/// scoped threads. Falls back to sequential execution for tiny workloads.
fn run_parallel<I: Send, F: Fn(I) + Sync + ?Sized>(items: Vec<I>, f: &F) {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get()).min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let mut buckets: Vec<Vec<I>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % threads].push(item);
    }
    std::thread::scope(|s| {
        for bucket in buckets {
            s.spawn(move || {
                for item in bucket {
                    f(item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_cover_whole_slice() {
        let mut data = vec![0usize; 103];
        data.as_mut_slice().par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[102], 11);
    }

    #[test]
    fn plain_for_each_works() {
        let mut data = vec![1i32; 64];
        data.as_mut_slice().par_chunks_mut(7).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v *= 2;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }
}
