//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates-io access, so the workspace vendors a
//! minimal serde replacement. Instead of serde's zero-copy visitor
//! architecture, this shim round-trips through an owned JSON-like
//! [`Value`] tree: [`Serialize`] renders a value into a tree and
//! [`Deserialize`] reads one back. The `serde_json` shim then prints and
//! parses that tree. The derive macros (re-exported from `serde_derive`)
//! cover the shapes this workspace uses: named/tuple/unit structs, enums
//! with unit/tuple/struct variants, and the `#[serde(from = "T", into =
//! "T")]` container attribute.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like data tree — the interchange format between
/// [`Serialize`], [`Deserialize`] and the `serde_json` shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Looks up a field of an object; absent fields read as [`Value::Null`]
    /// (so `Option` fields tolerate missing keys).
    pub fn field(&self, name: &str) -> &Value {
        if let Value::Obj(entries) = self {
            for (k, v) in entries {
                if k == name {
                    return v;
                }
            }
        }
        &NULL
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be read back from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads an instance from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A [`Value`] serializes to itself, so generic JSON trees round-trip.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

/// A [`Value`] deserializes from itself by cloning the parsed tree.
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    _ => Err(DeError::expected("unsigned integer", v)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range"))),
                    _ => Err(DeError::expected("integer", v)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact, so the f64 shortest-round-trip printer
        // preserves every f32 bit pattern (apart from NaN payloads).
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// References and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_boxlike {
    ($($p:path),*) => {$(
        impl<T: Serialize + ?Sized> Serialize for $p {
            fn to_value(&self) -> Value {
                (**self).to_value()
            }
        }
        impl<T: Deserialize> Deserialize for $p {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                T::from_value(v).map(<$p>::new)
            }
        }
    )*};
}

impl_boxlike!(Box<T>, std::sync::Arc<T>, std::rc::Rc<T>);

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

/// Renders a map key as a JSON object key. Mirrors `serde_json`: string
/// keys pass through, integer and boolean keys stringify.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => {
            panic!("map key must serialize to a string, integer or bool, got {}", other.kind())
        }
    }
}

/// Reads a map key back: tries the key type directly as a string, then as
/// a stringified integer (for numeric newtype keys like entity ids).
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        return K::from_value(&Value::U64(n));
    }
    if let Ok(n) = s.parse::<i64>() {
        return K::from_value(&Value::I64(n));
    }
    Err(DeError(format!("cannot interpret object key {s:?}")))
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut rendered: Vec<(String, Value)> =
        entries.map(|(k, v)| (key_to_string(&k.to_value()), v.to_value())).collect();
    // Sort for deterministic output (HashMap iteration order is random).
    rendered.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Obj(rendered)
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_obj().ok_or_else(|| DeError::expected("object", v))?;
        entries.iter().map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?))).collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_obj().ok_or_else(|| DeError::expected("object", v))?;
        entries.iter().map(|(k, val)| Ok((key_from_string(k)?, V::from_value(val)?))).collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        // Sort the rendered output for determinism (set order is random);
        // compare via the compact textual form.
        items.sort_by_key(render_sort_key);
        Value::Arr(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
        items.iter().map(T::from_value).collect()
    }
}

/// A total-order sort key over rendered values, used to emit hash-based
/// collections deterministically.
fn render_sort_key(v: &Value) -> String {
    match v {
        Value::Null => "n".to_string(),
        Value::Bool(b) => format!("b{b}"),
        Value::U64(n) => format!("u{n:020}"),
        Value::I64(n) => format!("i{n:+021}"),
        Value::F64(x) => format!("f{x}"),
        Value::Str(s) => format!("s{s}"),
        Value::Arr(items) => {
            let mut out = "a".to_string();
            for item in items {
                out.push_str(&render_sort_key(item));
                out.push('\u{1f}');
            }
            out
        }
        Value::Obj(entries) => {
            let mut out = "o".to_string();
            for (k, val) in entries {
                out.push_str(k);
                out.push('\u{1e}');
                out.push_str(&render_sort_key(val));
                out.push('\u{1f}');
            }
            out
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr; $($t:ident : $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_arr().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $n {
                    return Err(DeError(format!(
                        "expected array of length {}, found {}", $n, items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1; A: 0);
impl_tuple!(2; A: 0, B: 1);
impl_tuple!(3; A: 0, B: 1, C: 2);
impl_tuple!(4; A: 0, B: 1, C: 2, D: 3);
impl_tuple!(5; A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(6; A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Obj(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.field("b"), &Value::Null);
        assert_eq!(obj.field("a"), &Value::U64(1));
    }

    #[test]
    fn hashmap_sorted_for_determinism() {
        let mut m = std::collections::HashMap::new();
        m.insert("z".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        let v = m.to_value();
        let entries = v.as_obj().unwrap();
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "z");
    }
}
