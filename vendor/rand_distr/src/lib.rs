//! Offline drop-in subset of `rand_distr`: the [`Normal`] distribution,
//! which is all this workspace samples (Gaussian weight initialization).

use rand::RngCore;

/// Types that can be sampled given an RNG.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std^2)` over `f32`.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f32,
    std: f32,
}

impl Normal {
    /// Creates a normal distribution; `std` must be finite and non-negative.
    pub fn new(mean: f32, std: f32) -> Result<Self, NormalError> {
        if !std.is_finite() || std < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std })
    }
}

impl Distribution<f32> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // Box–Muller transform; u1 is kept away from 0 so ln(u1) is finite.
        let unit = |r: &mut R| ((r.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let u1 = f64::max(unit(rng), 1e-300);
        let u2 = unit(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std * z as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_negative_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f32::NAN).is_err());
    }

    #[test]
    fn moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(2.0, 0.5).unwrap();
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }
}
