//! Offline drop-in subset of `proptest`.
//!
//! Covers what this workspace's property tests use: the [`Strategy`] trait
//! with `prop_map`, numeric range strategies, [`collection::vec`], simple
//! character-class regex strategies (`"[a-zA-Z0-9]{1,8}"`), `any::<u64>()`,
//! tuple strategies, the [`proptest!`] macro with an optional
//! `ProptestConfig`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case reports its case index and message. Inputs
//! are generated deterministically per test from the case index, so
//! failures reproduce exactly on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-case RNG used by the [`proptest!`] expansion.
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case number `case` — stable across runs and platforms.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(0x70726F70_u64 ^ case.wrapping_mul(0x9E3779B97F4A7C15)))
    }

    /// Draws 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// The underlying seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Test-runner configuration (subset: number of cases).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u64,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The "any value" strategy for a type, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f32, f64);

/// Character-class regex strategies like `"[a-zA-Z0-9]{1,8}"`.
///
/// Supported grammar: one `[...]` class (literal characters and `a-z`
/// ranges) followed by an optional `{n}` or `{n,m}` repetition (default:
/// exactly one).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class(self);
        assert!(!alphabet.is_empty(), "empty character class in pattern {self:?}");
        let len = rng.rng().gen_range(min..=max);
        (0..len).map(|_| alphabet[rng.rng().gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let chars: Vec<char> = pattern.chars().collect();
    assert!(
        chars.first() == Some(&'['),
        "proptest shim supports only `[class]{{n,m}}` patterns, got {pattern:?}"
    );
    let close = chars
        .iter()
        .position(|&c| c == ']')
        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
    let mut alphabet = Vec::new();
    let mut i = 1;
    while i < close {
        if i + 2 < close && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    let rest: String = chars[close + 1..].iter().collect();
    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition {rest:?} in {pattern:?}"));
    let (min, max) = match inner.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition lower bound"),
            hi.trim().parse().expect("bad repetition upper bound"),
        ),
        None => {
            let n = inner.trim().parse().expect("bad repetition count");
            (n, n)
        }
    };
    (alphabet, min, max)
}

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Bounds for the length of a generated collection.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.rng().gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the formatted message (no panic unwinding per case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// block runs `cases` times with fresh random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$attr:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        panic!("proptest case {case} failed: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(n in 3usize..9, x in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x), "x = {x}");
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for x in &v {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn regex_class_shape(s in "[a-c]{2,4}") {
            prop_assert!(s.len() >= 2 && s.len() <= 4, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn tuples_and_map(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = crate::collection::vec(0u64..100, 3..10);
        let a = Strategy::generate(&strat, &mut TestRng::for_case(5));
        let b = Strategy::generate(&strat, &mut TestRng::for_case(5));
        assert_eq!(a, b);
    }
}
