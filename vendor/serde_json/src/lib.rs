//! Offline drop-in subset of `serde_json`: [`to_string`],
//! [`to_string_pretty`] and [`from_str`] over the vendored `serde`
//! [`Value`](serde::Value) tree.
//!
//! Floats print with Rust's shortest round-trip formatting, so every
//! `f32`/`f64` value (including subnormals) survives a serialize →
//! parse cycle bit-exactly.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error produced by JSON printing or parsing.
#[derive(Clone, Debug)]
pub struct Error(String);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = core::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` out of a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` is Rust's shortest round-trip float formatting.
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Inf; mirror JavaScript's JSON.stringify.
                out.push_str("null");
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice =
            self.bytes.get(self.pos..end).ok_or_else(|| Error("truncated \\u escape".into()))?;
        let text = core::str::from_utf8(slice).map_err(|_| Error("invalid \\u escape".into()))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<u64>() {
                    if n == 0 {
                        // Preserve the sign bit of negative zero.
                        return Ok(Value::F64(-0.0));
                    }
                    if let Ok(signed) = i64::try_from(n) {
                        return Ok(Value::I64(-signed));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a \"b\"\n").unwrap(), "\"a \\\"b\\\"\\n\"");
        assert_eq!(from_str::<String>("\"a \\\"b\\\"\\n\"").unwrap(), "a \"b\"\n");
    }

    #[test]
    fn f32_values_round_trip_exactly() {
        let cases: Vec<f32> = vec![
            0.0,
            -0.0,
            0.1,
            1.0 / 3.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            -1.234_568e-30,
            core::f32::consts::PI,
        ];
        for x in cases {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {json} -> {back}");
        }
    }

    #[test]
    fn vec_of_tuples_round_trips() {
        let v: Vec<(String, f32)> = vec![("a".into(), 1.5), ("b".into(), -2.25)];
        let json = to_string(&v).unwrap();
        let back: Vec<(String, f32)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(s, "A😀");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("42 x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
    }
}
