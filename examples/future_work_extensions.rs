//! The paper's stated future work, implemented: signaling-flow and
//! configuration data as extra stage-2 training sources.
//!
//! Generates signaling flows over the network topology (wrapped with the
//! `[SIG]` extension prompt token) and per-instance configuration tables
//! (numeric `[ATTR]`/`[NUM]` templates), appends both to the re-training
//! pool, and shows the adaptive numeric encoder picking up the new
//! configuration tags.
//!
//! Run with: `cargo run --release --example future_work_extensions`

use tele_knowledge::datagen::extensions::{
    config_tables, config_templates, signaling_flows, signaling_templates, SignalingConfig,
};
use tele_knowledge::datagen::{logs, Scale, Suite};
use tele_knowledge::model::{
    pretrain, retrain, PretrainConfig, RetrainConfig, RetrainData, Strategy,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

fn main() {
    let suite = Suite::generate(Scale::Smoke, 88);

    // Future-work data sources.
    let flows = signaling_flows(&suite.world, &SignalingConfig::default());
    let tables = config_tables(&suite.world, 9);
    let sig_templates = signaling_templates(&suite.world, &flows);
    let cfg_templates = config_templates(&suite.world, &tables);
    println!(
        "generated {} signaling steps across {} flows, {} config rows",
        sig_templates.len(),
        flows.len(),
        cfg_templates.len()
    );
    println!(
        "example flow: {:?} with {} steps (first: {:?} -> {:?})",
        flows[0].procedure,
        flows[0].steps.len(),
        suite.world.instances[flows[0].steps[0].from].name,
        suite.world.instances[flows[0].steps[0].to].name,
    );

    // Stage 1 as usual.
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 2,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };
    let (telebert, _) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 60, batch_size: 6, ..Default::default() },
    );

    // Stage 2 with the extended template pool: machine logs + signaling
    // flows + configuration tables.
    let mut templates = logs::log_templates(&suite.world, &suite.episodes);
    let base_tags = {
        // Count tags the baseline pool would fit, for comparison.
        let mut set = std::collections::HashSet::new();
        for t in &templates {
            for f in t {
                if let tele_knowledge::tokenizer::FieldContent::Numeric { tag, .. } = &f.content {
                    set.insert(tag.clone());
                }
            }
        }
        set.len()
    };
    templates.extend(sig_templates);
    templates.extend(cfg_templates);

    let data = RetrainData {
        causal_sentences: &suite.causal_sentences,
        log_templates: &templates,
        kg: &suite.built_kg.kg,
    };
    let (ktelebert, log) = retrain(
        telebert,
        &data,
        Strategy::Stl,
        &RetrainConfig { steps: 60, batch_size: 6, ..Default::default() },
    );
    println!("\nre-trained with extensions: final loss {:.3}", log.final_loss);
    println!(
        "numeric tags known to ANEnc: {} (machine logs alone would give ~{base_tags})",
        ktelebert.normalizer.num_tags()
    );

    // The configuration parameters are now first-class numeric tags.
    for tag in ["max sessions", "heartbeat interval", "timer t3510"] {
        println!(
            "  tag {tag:?}: id {:?}, 0.5-normalized raw 500 -> {:.3}",
            ktelebert.normalizer.tag_id(tag),
            ktelebert.normalizer.normalize(tag, 500.0)
        );
    }
}
