//! The adaptive numeric encoder (ANEnc) in isolation.
//!
//! Trains a standalone ANEnc on tagged values with all three auxiliary
//! objectives (regression, tag classification, numerical contrast) under
//! uncertainty-weighted fusion, then shows that:
//! - the numeric decoder recovers values from embeddings,
//! - embedding distance tracks value distance (the Fig. 10 property),
//! - different tags occupy different regions.
//!
//! Run with: `cargo run --release --example numeric_encoding`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tele_knowledge::model::{Anenc, AnencConfig, TagNormalizer};
use tele_knowledge::tensor::{optim::AdamW, ParamStore, Tape, Tensor};

const DIM: usize = 32;

fn tag_embedding(tag_id: usize) -> Vec<f32> {
    (0..DIM).map(|i| ((i + tag_id * 7) as f32 * 0.31).sin() * 0.3).collect()
}

fn tags_tensor<'t>(tape: &'t Tape, ids: &[usize]) -> tele_knowledge::tensor::Var<'t> {
    let data: Vec<f32> = ids.iter().flat_map(|&t| tag_embedding(t)).collect();
    tape.constant(Tensor::from_vec(data, [ids.len(), DIM]))
}

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let cfg = AnencConfig::for_dim(DIM, 3);
    let anenc = Anenc::new(&mut store, "demo", cfg, &mut rng);
    let mut opt = AdamW::new(2e-3, 0.0);

    // Normalizer over three tags with different raw ranges — exactly the
    // paper's setting where each KPI has its own scale.
    let mut normalizer = TagNormalizer::new();
    normalizer.fit([
        ("cpu load", 0.0),
        ("cpu load", 100.0),
        ("latency ms", 1.0),
        ("latency ms", 500.0),
        ("success rate", 0.0),
        ("success rate", 1.0),
    ]);
    let tags = ["cpu load", "latency ms", "success rate"];
    let ranges = [(0.0f32, 100.0f32), (1.0, 500.0), (0.0, 1.0)];

    println!("training ANEnc with L_reg + L_cls + L_nc (uncertainty-weighted)...");
    for step in 0..300 {
        store.zero_grads();
        // A batch of random tagged values.
        let mut values = Vec::new();
        let mut tag_ids = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..12 {
            let t = rng.gen_range(0..3);
            let raw = rng.gen_range(ranges[t].0..ranges[t].1);
            values.push(normalizer.normalize(tags[t], raw));
            tag_ids.push(t);
            labels.push(normalizer.tag_id(tags[t]));
        }
        let tape = Tape::new();
        let tv = tags_tensor(&tape, &tag_ids);
        let h = anenc.encode(&tape, &store, &values, tv);
        let loss = anenc.numeric_loss(&tape, &store, h, h, &values, &labels);
        tape.backward(loss).accumulate_into(&tape, &mut store);
        opt.step(&mut store);
        if step % 100 == 0 {
            println!(
                "  step {step}: loss {:.4}, μ = {:?}",
                loss.value().item(),
                anenc.uncertainties(&store)
            );
        }
    }

    // Value recovery through the numeric decoder.
    println!("\nvalue recovery (cpu load):");
    let probe = [10.0f32, 50.0, 90.0];
    let normed: Vec<f32> = probe.iter().map(|&v| normalizer.normalize("cpu load", v)).collect();
    let tape = Tape::new();
    let tv = tags_tensor(&tape, &[0, 0, 0]);
    let h = anenc.encode(&tape, &store, &normed, tv);
    let err = anenc.regression_loss(&tape, &store, h, &normed).value().item();
    println!("  NDec reconstruction MSE over normalized values: {err:.5}");

    // Distance structure: |v1 - v2| vs embedding distance.
    println!("\nembedding distance vs value distance (cpu load):");
    let sweep: Vec<f32> = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    let tape = Tape::new();
    let tv = tags_tensor(&tape, &vec![0; sweep.len()]);
    let hs = anenc.encode(&tape, &store, &sweep, tv).value();
    for (i, v) in sweep.iter().enumerate().skip(1) {
        let d: f32 =
            hs.row(0).iter().zip(hs.row(i)).map(|(a, b)| (a - b) * (a - b)).sum::<f32>().sqrt();
        println!("  |0.00 - {v:.2}| -> embedding distance {d:.3}");
    }

    // Tag separation: same value, different tag.
    let tape = Tape::new();
    let tv = tags_tensor(&tape, &[0, 1, 2]);
    let hs = anenc.encode(&tape, &store, &[0.5, 0.5, 0.5], tv).value();
    let d01: f32 = hs.row(0).iter().zip(hs.row(1)).map(|(a, b)| (a - b).abs()).sum();
    let d02: f32 = hs.row(0).iter().zip(hs.row(2)).map(|(a, b)| (a - b).abs()).sum();
    println!("\ntag separation at value 0.5: |cpu−latency| = {d01:.2}, |cpu−success| = {d02:.2}");
    println!("(nonzero separation = the field-aware meta attention distinguishes tags)");
}
