//! Quickstart: the full KTeleBERT pipeline on a small synthetic tele-world.
//!
//! 1. Generate a tele-world (alarms, KPIs, topology, fault DAG) and derive
//!    a corpus, machine logs and a Tele-KG from it.
//! 2. Train a tokenizer and pre-train TeleBERT (stage 1).
//! 3. Re-train into KTeleBERT (stage 2: causal sentences + logs + KG).
//! 4. Deliver service embeddings and show that causally related events are
//!    closer than unrelated ones.
//!
//! Run with: `cargo run --release --example quickstart`

use tele_knowledge::datagen::{logs, Scale, Suite};
use tele_knowledge::model::{
    cosine, pretrain, retrain, PretrainConfig, RetrainConfig, RetrainData, Strategy,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{SpecialTokenConfig, TeleTokenizer, TokenizerConfig};

fn main() {
    // 1. A deterministic synthetic tele-world.
    let suite = Suite::generate(Scale::Smoke, 42);
    println!("world: {:?}", suite.world);
    println!(
        "corpus: {} sentences ({} causal)",
        suite.tele_corpus.len(),
        suite.causal_sentences.len()
    );
    println!("kg: {:?}", suite.built_kg.kg);

    // 2. Tokenizer + stage-1 pre-training (TeleBERT).
    let tokenizer = TeleTokenizer::train(
        suite.tele_corpus.iter(),
        &TokenizerConfig {
            bpe_merges: 400,
            special: SpecialTokenConfig { min_len: 2, max_len: 4, min_freq: 8 },
            phrases: tele_knowledge::datagen::words::DOMAIN_PHRASES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
    );
    println!("tokenizer vocab = {}", tokenizer.vocab_size());

    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 48,
        layers: 2,
        heads: 4,
        ffn_hidden: 96,
        max_len: 48,
        dropout: 0.1,
    };
    let (telebert, log) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 120, batch_size: 8, ..Default::default() },
    );
    println!("TeleBERT pre-trained: mean loss {:.3}, final {:.3}", log.mean_loss, log.final_loss);
    // The trace records every objective at every step; print the aggregates.
    for o in log.summary().objectives {
        println!("  {:>6}: final {:.3}, mean {:.3} over {} steps", o.name, o.last, o.mean, o.steps);
    }

    // 3. Stage-2 re-training (KTeleBERT, iterative multi-task).
    let templates = logs::log_templates(&suite.world, &suite.episodes);
    let data = RetrainData {
        causal_sentences: &suite.causal_sentences,
        log_templates: &templates,
        kg: &suite.built_kg.kg,
    };
    let (ktelebert, klog) = retrain(
        telebert,
        &data,
        Strategy::Imtl,
        &RetrainConfig { steps: 90, batch_size: 8, ..Default::default() },
    );
    println!(
        "KTeleBERT re-trained: mean loss {:.3}, final {:.3}, {} numeric tags",
        klog.mean_loss,
        klog.final_loss,
        ktelebert.normalizer.num_tags()
    );
    for o in klog.summary().objectives {
        println!("  {:>6}: final {:.3}, mean {:.3} over {} steps", o.name, o.last, o.mean, o.steps);
    }
    if let Some(mu) = klog.records.last().and_then(|r| r.uncertainty.clone()) {
        println!("  uncertainty weights μ = [{:.3}, {:.3}, {:.3}]", mu[0], mu[1], mu[2]);
    }

    // 4. Service embeddings: a ground-truth causal pair should be closer
    //    than an unrelated pair.
    let edge = &suite.world.causal_edges[0];
    let src = suite.world.event_name(edge.src).to_string();
    let dst = suite.world.event_name(edge.dst).to_string();
    // An event with no causal link to `src`.
    let unrelated =
        (0..suite.world.num_events())
            .find(|&e| {
                e != edge.src
                    && e != edge.dst
                    && !suite.world.causal_edges.iter().any(|c| {
                        (c.src == edge.src && c.dst == e) || (c.src == e && c.dst == edge.src)
                    })
            })
            .expect("an unrelated event exists");
    let unrelated = suite.world.event_name(unrelated).to_string();

    // Encode every event name, then mean-center: raw transformer [CLS]
    // embeddings share a large common component (anisotropy) that hides
    // the relative structure; all downstream tasks center the same way.
    let all_names: Vec<String> =
        (0..suite.world.num_events()).map(|e| suite.world.event_name(e).to_string()).collect();
    let raw = ktelebert.encode_batch(&all_names).expect("encode");
    let dim = raw[0].len();
    let mean: Vec<f32> =
        (0..dim).map(|k| raw.iter().map(|r| r[k]).sum::<f32>() / raw.len() as f32).collect();
    let centered: Vec<Vec<f32>> =
        raw.iter().map(|r| r.iter().zip(&mean).map(|(v, m)| v - m).collect()).collect();
    let idx = |name: &str| all_names.iter().position(|n| n == name).expect("known event");
    let related_sim = cosine(&centered[idx(&src)], &centered[idx(&dst)]);
    let unrelated_sim = cosine(&centered[idx(&src)], &centered[idx(&unrelated)]);
    println!("\nexample pair:");
    println!("  cos(\"{src}\", \"{dst}\")  [causal]    = {related_sim:+.3}");
    println!("  cos(\"{src}\", \"{unrelated}\")  [unrelated] = {unrelated_sim:+.3}");

    // The robust statistic: mean similarity over ALL ground-truth causal
    // pairs vs. all non-pairs (single pairs are noisy at this tiny scale).
    let is_pair = |a: usize, b: usize| {
        suite
            .world
            .causal_edges
            .iter()
            .any(|e| (e.src == a && e.dst == b) || (e.src == b && e.dst == a))
    };
    let (mut pos, mut npos, mut neg, mut nneg) = (0.0f32, 0, 0.0f32, 0);
    for a in 0..suite.world.num_events() {
        for b in (a + 1)..suite.world.num_events() {
            let c = cosine(&centered[a], &centered[b]);
            if is_pair(a, b) {
                pos += c;
                npos += 1;
            } else {
                neg += c;
                nneg += 1;
            }
        }
    }
    let (pos, neg) = (pos / npos as f32, neg / nneg as f32);
    println!("\naggregate over all {npos} ground-truth causal pairs:");
    println!("  mean cos(causal pairs)   = {pos:+.3}");
    println!("  mean cos(non-pairs)      = {neg:+.3}");
    println!(
        "\n{}",
        if pos > neg {
            "-> causally related events are closer in embedding space, as expected;\n   increase the step budget (see tele-bench's zoo) to sharpen the gap"
        } else {
            "-> no separation yet at this tiny training scale; increase steps"
        }
    );
}
