//! Fault chain tracing (paper Task 3): complete broken fault-propagation
//! chains by link prediction over an uncertain knowledge graph.
//!
//! Trains GTransE (confidence-weighted margin loss) from two different
//! initializations — random vs. word-overlap embeddings of the node names —
//! and reports filtered MRR / Hits@N, demonstrating the paper's point that
//! informative initialization drives this low-resource task.
//!
//! Run with: `cargo run --release --example fault_chain_tracing`

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::tasks::{random_embeddings, run_fct, word_avg_embeddings, FctTaskConfig};

fn main() {
    let suite = Suite::generate(Scale::Smoke, 33);
    let stats = suite.fct.stats();
    println!(
        "FCT dataset: {} nodes, {} relation types, {}/{}/{} train/valid/test facts",
        stats.nodes, stats.edges, stats.train, stats.valid, stats.test
    );

    // A few example facts.
    println!("\nexample probabilistic facts (h, r, t, s):");
    for f in suite.fct.train.iter().take(3) {
        println!(
            "  ({:?}, {:?}, {:?}, {:.2})",
            suite.fct.node_names[f.head],
            suite.fct.rel_names[f.rel],
            suite.fct.node_names[f.tail],
            f.conf
        );
    }

    let cfg = FctTaskConfig { epochs: 40, seed: 9, ..Default::default() };
    println!("\n{:<12} {:>7} {:>8} {:>8} {:>8}", "Init", "MRR", "Hits@1", "Hits@3", "Hits@10");
    for (name, emb) in [
        ("Random", random_embeddings(&suite.fct.node_names, 48, 4).expect("encode")),
        ("WordAvg", word_avg_embeddings(&suite.fct.node_names, 48, 4).expect("encode")),
    ] {
        let res = run_fct(&suite.fct, &emb, &cfg);
        println!(
            "{:<12} {:>7.1} {:>8.1} {:>8.1} {:>8.1}",
            name, res.test.mrr, res.test.hits1, res.test.hits3, res.test.hits10
        );
    }
    println!("\nRun `cargo bench -p tele-bench --bench table8_fct` for the full");
    println!("comparison including the pre-trained KTeleBERT initializations.");
}
