//! Exploring the Tele-product Knowledge Graph (Tele-KG).
//!
//! Builds the KG from a synthetic tele-world and demonstrates the access
//! patterns the paper describes: schema hierarchy, SPARQL-style pattern
//! queries, triple serialization into training sentences, prompt-template
//! wrapping, and negative sampling for the KE objective.
//!
//! Run with: `cargo run --release --example telekg_explore`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tele_knowledge::datagen::kg_build::relations;
use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::kg::serialize;

fn main() {
    let suite = Suite::generate(Scale::Smoke, 55);
    let kg = &suite.built_kg.kg;
    println!("{kg:?}\n");

    // Schema hierarchy.
    println!("schema classes ({}):", kg.schema.len());
    let event_root = kg.schema.event_root();
    let resource_root = kg.schema.resource_root();
    println!("  roots: {:?} / {:?}", kg.schema.name(event_root), kg.schema.name(resource_root));
    println!(
        "  {} entities under Event, {} under Resource",
        kg.entities_of_class(event_root).len(),
        kg.entities_of_class(resource_root).len()
    );

    // SPARQL-style pattern queries.
    let trigger = kg.relation(relations::TRIGGER).expect("trigger relation");
    let triggers = kg.query(None, Some(trigger), None);
    println!("\nexpert-recorded trigger facts: {}", triggers.len());
    for t in triggers.iter().take(4) {
        println!("  ({}, trigger, {})", kg.surface(t.head), kg.surface(t.tail));
    }

    // Which alarms does the first trigger source affect (one-hop)?
    if let Some(first) = triggers.first() {
        let out = kg.query(Some(first.head), None, None);
        println!("\nall facts with head {:?}:", kg.surface(first.head));
        for t in &out {
            println!("  --{}--> {}", kg.relation_name(t.rel), kg.surface(t.tail));
        }
    }

    // Serialization paths: training sentence and prompt template.
    let t = &kg.triples()[0];
    println!("\nimplicit injection (sentence): {:?}", serialize::triple_sentence(kg, t));
    println!("explicit injection (template): {:?}", serialize::triple_template(kg, t));
    let e = suite.built_kg.event_entities[0];
    println!("entity w/ attributes template: {:?}", serialize::entity_template(kg, e, true));

    // Negative sampling for the KE objective.
    let mut rng = StdRng::seed_from_u64(1);
    let negs = kg.negative_samples(t, 3, &mut rng);
    println!("\n{} negative samples for the first triple:", negs.len());
    for n in &negs {
        println!("  ({}, {}, {})", kg.surface(n.head), kg.relation_name(n.rel), kg.surface(n.tail));
    }

    // SPARQL-style queries (paper Sec. I: experts retrieve background
    // knowledge from Tele-KG with SPARQL).
    println!("\nSPARQL-style queries:");
    let q = r#"SELECT ?a ?ne WHERE { ?a type Alarm . ?a trigger ?b . ?a locatedAt ?ne }"#;
    println!("  {q}");
    match tele_knowledge::kg::query(kg, q) {
        Ok(solutions) => {
            for b in solutions.iter().take(5) {
                println!("    ?a = {:?}  ?ne = {:?}", kg.surface(b["a"]), kg.surface(b["ne"]));
            }
            println!("    ({} solutions total)", solutions.len());
        }
        Err(e) => println!("    query failed: {e}"),
    }
    let ask = format!(
        r#"ASK {{ "{}" trigger "{}" }}"#,
        kg.surface(kg.triples()[0].head),
        kg.surface(kg.triples()[0].tail)
    );
    let yes = !tele_knowledge::kg::query(kg, &ask).expect("ask").is_empty();
    println!("  {ask}\n    -> {yes}");
}
