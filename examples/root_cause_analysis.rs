//! Root-cause analysis (paper Task 1): rank network elements of a faulty
//! telecom state by how likely they are the root cause.
//!
//! Builds the RCA dataset from simulated fault episodes, trains the
//! GCN-based ranking model on three embedding providers (random, averaged
//! word embeddings, trained TeleBERT) and compares MR / Hits@N.
//!
//! Run with: `cargo run --release --example root_cause_analysis`

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::model::{pretrain, PretrainConfig, ServiceFormat};
use tele_knowledge::tasks::{
    random_embeddings, run_rca, service_embeddings, word_avg_embeddings, RcaTaskConfig,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

fn main() {
    let suite = Suite::generate(Scale::Smoke, 7);
    let stats = suite.rca.stats();
    println!(
        "RCA dataset: {} graphs, {} features, avg {:.1} nodes / {:.1} edges",
        stats.graphs, stats.features, stats.avg_nodes, stats.avg_edges
    );

    let names: Vec<String> =
        (0..suite.world.num_events()).map(|e| suite.world.event_name(e).to_string()).collect();
    let cfg = RcaTaskConfig { epochs: 12, seed: 3, ..Default::default() };

    // Baselines.
    let rand_emb = random_embeddings(&names, 48, 1).expect("encode");
    let word_emb = word_avg_embeddings(&names, 48, 1).expect("encode");

    // A quickly pre-trained TeleBERT.
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 48,
        layers: 2,
        heads: 4,
        ffn_hidden: 96,
        max_len: 48,
        dropout: 0.1,
    };
    let (telebert, _) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 150, batch_size: 8, ..Default::default() },
    );
    let tele_emb = service_embeddings(
        &telebert,
        Some(&suite.built_kg.kg),
        &names,
        ServiceFormat::EntityNoAttr,
    )
    .expect("encode");

    println!("\n{:<16} {:>6} {:>8} {:>8} {:>8}", "Provider", "MR", "Hits@1", "Hits@3", "Hits@5");
    for (name, emb) in [("Random", rand_emb), ("WordAvg", word_emb), ("TeleBERT", tele_emb)] {
        let res = run_rca(&suite.rca, &emb, &cfg);
        println!(
            "{:<16} {:>6.2} {:>8.2} {:>8.2} {:>8.2}",
            name, res.mean.mr, res.mean.hits1, res.mean.hits3, res.mean.hits5
        );
    }
    println!("\nHigher Hits@N / lower MR = better root-cause localization.");
}
