//! Event association prediction (paper Task 2): does event A trigger
//! event B?
//!
//! Builds labeled trigger pairs from simulated fault episodes, then trains
//! the pair classifier — text embeddings + one-hop topology aggregation +
//! time-difference feature — and reports Accuracy / Precision / Recall / F1.
//!
//! Run with: `cargo run --release --example event_association`

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::tasks::{random_embeddings, run_eap, word_avg_embeddings, EapTaskConfig};

fn main() {
    let suite = Suite::generate(Scale::Smoke, 21);
    let stats = suite.eap.stats();
    println!(
        "EAP dataset: {} events, {}+{} pairs, {} packages, {} NEs",
        stats.events, stats.positive_pairs, stats.negative_pairs, stats.packages, stats.elements
    );

    let names: Vec<String> =
        (0..suite.world.num_events()).map(|e| suite.world.event_name(e).to_string()).collect();
    let neighbors: Vec<Vec<usize>> =
        (0..suite.world.instances.len()).map(|i| suite.world.instance_neighbors(i)).collect();

    let cfg = EapTaskConfig { epochs: 12, seed: 5, ..Default::default() };
    println!(
        "\n{:<16} {:>9} {:>10} {:>8} {:>8}",
        "Provider", "Accuracy", "Precision", "Recall", "F1"
    );
    for (name, emb) in [
        ("Random", random_embeddings(&names, 48, 2).expect("encode")),
        ("WordAvg", word_avg_embeddings(&names, 48, 2).expect("encode")),
    ] {
        let res = run_eap(&suite.eap, &emb, &neighbors, &cfg);
        println!(
            "{:<16} {:>9.1} {:>10.1} {:>8.1} {:>8.1}",
            name, res.mean.accuracy, res.mean.precision, res.mean.recall, res.mean.f1
        );
    }

    // Show a concrete prediction example: a true trigger pair.
    let pos = suite.eap.pairs.iter().find(|p| p.label).expect("a positive pair exists");
    println!(
        "\nexample positive pair:\n  \"{}\" (t={}) --triggers--> \"{}\" (t={})",
        suite.world.event_name(pos.e1),
        pos.t1,
        suite.world.event_name(pos.e2),
        pos.t2
    );
    println!(
        "  on instances {} -> {}",
        suite.world.instances[pos.ne1].name, suite.world.instances[pos.ne2].name
    );
}
