//! `tele` — command-line interface to the tele-knowledge reproduction.
//!
//! ```text
//! tele world    [--seed N] [--scale smoke|lab|paper]      inspect the tele-world
//! tele corpus   [--seed N] [--count N]                    sample corpus sentences
//! tele simulate [--seed N] [--episodes N]                 fault-episode summaries
//! tele query    [--seed N] <SPARQL-like query>            query the Tele-KG
//! tele train    [--seed N] [--steps N] [--retrain N] [--device ref|fast]
//!               [--telemetry FILE] [--heartbeat FILE] [--flight-dir DIR]
//!               [--profile FILE] [--checkpoint-dir DIR] [--checkpoint-every N]
//!               [--checkpoint-keep N] [--resume auto|never]
//!               [--guard off|skip|rollback|abort] [--stop-after N]
//!               [--die-at-step N] --out FILE              train and checkpoint
//! tele encode   --ckpt FILE [--batch-size N] [--file FILE|-]
//!               [<sentence> ...]                          embed + similarities
//! tele serve    --ckpt FILE [--addr HOST:PORT] [--workers N] [--batch-size N]
//!               [--max-wait-us N] [--cache N] [--window-secs N]
//!               [--queue N] [--deadline-us N] [--accept-queue N]
//!               [--idle-timeout-ms N] [--watch DIR] [--watch-interval-ms N]
//!               [--flight-dir DIR|none]                   NDJSON TCP server
//! tele serve-bench --ckpt FILE [--requests N] [--unique N] [--threads N]
//!               [--batch-size N] [--queue N] [--deadline-us N] [--out FILE]
//!               [--overhead-rounds N] [--overhead-out FILE]
//!               [--arrival-rps R1,R2,...] [--arrival-requests N]
//!               [--overload-out FILE]                     serving load test
//! tele top      --addr HOST:PORT | --file HEARTBEAT.json
//!               [--interval-ms N] [--count N]             live metrics view
//! tele profile  [--seed N] [--steps N] [--device ref|fast] [--out FILE]
//!                                                         profile a short run
//! tele profile  --check FILE                              validate a trace file
//! tele check    <config.json> [--resume FILE|DIR] [--json FILE]
//!                                                         verify a model config
//! tele lint     [--root DIR] [--allow FILE] [--json FILE] lint workspace sources
//! tele audit    [--root DIR] [--allow FILE] [--json FILE] [PATHS..]
//!                                                         concurrency/determinism audit
//! ```

use std::process::ExitCode;

use tele_knowledge::datagen::{logs, Scale, Suite};
use tele_knowledge::kg;
use tele_knowledge::model::{
    cosine, load_bundle, pretrain, retrain, save_bundle, write_atomic, Checkpointing,
    FaultTolerance, GuardConfig, GuardPolicy, PretrainConfig, RetrainConfig, RetrainData, Strategy,
};
use tele_knowledge::serve::{
    run_bench, run_overhead_bench, run_overload_bench, BenchConfig, InferenceSession, ServeClient,
    ServerConfig, SessionConfig, TelemetryConfig, WatchConfig,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{SpecialTokenConfig, TeleTokenizer, TokenizerConfig};
use tele_knowledge::trace::{self, export::ProfileReport};

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = std::collections::HashMap::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn u64_flag(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.flags.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer")),
            None => Ok(default),
        }
    }

    fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        Ok(self.u64_flag(name, default as u64)? as usize)
    }

    fn device(&self) -> Result<tele_knowledge::tensor::DeviceKind, String> {
        match self.flags.get("device") {
            Some(v) => tele_knowledge::tensor::DeviceKind::parse(v),
            None => Ok(tele_knowledge::tensor::device::current()),
        }
    }

    fn scale(&self) -> Result<Scale, String> {
        match self.flags.get("scale").map(String::as_str) {
            None | Some("smoke") => Ok(Scale::Smoke),
            Some("lab") => Ok(Scale::Lab),
            Some("paper") => Ok(Scale::Paper),
            Some(other) => Err(format!("unknown scale {other:?} (smoke|lab|paper)")),
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = raw.split_first() else {
        eprintln!("{}", USAGE);
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "world" => cmd_world(&args),
        "corpus" => cmd_corpus(&args),
        "simulate" => cmd_simulate(&args),
        "query" => cmd_query(&args),
        "train" => cmd_train(&args),
        "encode" => cmd_encode(&args),
        "serve" => cmd_serve(&args),
        "serve-bench" => cmd_serve_bench(&args),
        "top" => cmd_top(&args),
        "profile" => cmd_profile(&args),
        "check" => cmd_check(&args),
        "lint" => cmd_lint(&args),
        "audit" => cmd_audit(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "tele — tele-knowledge CLI
  tele world    [--seed N] [--scale smoke|lab|paper]
  tele corpus   [--seed N] [--count N]
  tele simulate [--seed N] [--episodes N]
  tele query    [--seed N] <query>      e.g. 'SELECT ?a WHERE { ?a type Alarm }'
  tele train    [--seed N] [--steps N] [--retrain N] [--device ref|fast]
                [--telemetry FILE] [--heartbeat FILE] [--flight-dir DIR]
                [--profile FILE] [--checkpoint-dir DIR] [--checkpoint-every N]
                [--checkpoint-keep N] [--resume auto|never]
                [--guard off|skip|rollback|abort] [--stop-after N]
                [--die-at-step N] --out FILE
  tele encode   --ckpt FILE [--batch-size N] [--file FILE|-] [<sentence> ...]
  tele serve    --ckpt FILE [--addr HOST:PORT] [--workers N] [--batch-size N]
                [--max-wait-us N] [--cache N] [--window-secs N]
                [--queue N] [--deadline-us N] [--accept-queue N]
                [--idle-timeout-ms N] [--watch DIR] [--watch-interval-ms N]
                [--flight-dir DIR|none]
                serve embeddings over newline-delimited JSON on TCP, with
                bounded admission (--queue), request deadlines, and hot
                checkpoint rollover (reload op / --watch)
  tele serve-bench --ckpt FILE [--requests N] [--unique N] [--threads N]
                [--batch-size N] [--queue N] [--deadline-us N] [--out FILE]
                [--overhead-rounds N] [--overhead-out FILE]
                [--arrival-rps R1,R2,...] [--arrival-requests N]
                [--overload-out FILE]
                compare batched serving against the sequential baseline,
                measure the telemetry overhead (tracing on vs off), or —
                with --arrival-rps — sweep open-loop arrival rates and
                report shed rate + latency quantiles per rate
  tele top      --addr HOST:PORT | --file HEARTBEAT.json
                [--interval-ms N] [--count N]
                live view of a serve endpoint's metrics op or a training
                heartbeat file (N=0 polls forever)
  tele profile  [--seed N] [--steps N] [--device ref|fast] [--out FILE]
                profile a short training run
  tele profile  --check FILE                          validate a Chrome trace file
  tele check    <config.json> [--resume FILE|DIR] [--json FILE]
                verify graph shapes, gradient coverage, and checkpoint pre-flight
  tele lint     [--root DIR] [--allow FILE] [--json FILE]
                lint workspace sources against the tele invariants
  tele audit    [--root DIR] [--allow FILE] [--json FILE] [PATHS..]
                concurrency & determinism flow analysis (lock order,
                blocking while locked, nondeterministic hash iteration)";

fn cmd_world(args: &Args) -> Result<(), String> {
    let suite = Suite::generate(args.scale()?, args.u64_flag("seed", 17)?);
    println!("{:?}", suite.world);
    println!("{:?}", suite.built_kg.kg);
    println!("\nNE types: {}", suite.world.ne_types.join(", "));
    println!("\nfirst alarms:");
    for a in suite.world.alarms.iter().take(5) {
        println!(
            "  {} [{}] {} (on {})",
            a.code,
            a.severity.label(),
            a.name,
            suite.world.ne_types[a.ne_type]
        );
    }
    println!("\nfirst KPIs:");
    for k in suite.world.kpis.iter().take(3) {
        println!("  {} {} (baseline {:.2})", k.code, k.name, k.baseline);
    }
    println!(
        "\ncausal DAG: {} edges, {} root alarms, max depth {}",
        suite.world.causal_edges.len(),
        suite.world.root_alarms().len(),
        suite.world.causal_depths().iter().max().unwrap_or(&0)
    );
    Ok(())
}

fn cmd_corpus(args: &Args) -> Result<(), String> {
    let suite = Suite::generate(args.scale()?, args.u64_flag("seed", 17)?);
    let count = args.usize_flag("count", 10)?;
    println!(
        "tele corpus: {} sentences, {} causal\n",
        suite.tele_corpus.len(),
        suite.causal_sentences.len()
    );
    for s in suite.tele_corpus.iter().take(count) {
        println!("  {s}");
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let suite = Suite::generate(args.scale()?, args.u64_flag("seed", 17)?);
    let n = args.usize_flag("episodes", 3)?;
    for (i, ep) in suite.episodes.iter().take(n).enumerate() {
        println!(
            "episode {i}: root {:?} on {}",
            suite.world.event_name(ep.root_event),
            suite.world.instances[ep.root_instance].name
        );
        for a in &ep.activations {
            let kind = match (a.parent, suite.world.is_alarm(a.event)) {
                (None, _) if a.event == ep.root_event => "root    ",
                (None, _) => "spurious",
                (_, true) => "alarm   ",
                (_, false) => "kpi     ",
            };
            println!(
                "  t={:>2} {kind} {:?} @ {}",
                a.time,
                suite.world.event_name(a.event),
                suite.world.instances[a.instance].name
            );
        }
    }
    Ok(())
}

fn cmd_query(args: &Args) -> Result<(), String> {
    let suite = Suite::generate(args.scale()?, args.u64_flag("seed", 17)?);
    let q = args
        .positional
        .first()
        .ok_or("query text required, e.g. 'SELECT ?a WHERE { ?a type Alarm }'")?;
    let solutions = kg::query(&suite.built_kg.kg, q).map_err(|e| e.to_string())?;
    println!("{} solution(s)", solutions.len());
    for b in solutions.iter().take(25) {
        let mut parts: Vec<String> =
            b.iter().map(|(v, &e)| format!("?{v} = {:?}", suite.built_kg.kg.surface(e))).collect();
        parts.sort();
        println!("  {}", parts.join("  "));
    }
    Ok(())
}

/// Parses the fault-tolerance flags shared by both training stages; `stage`
/// names the per-stage snapshot subdirectory under `--checkpoint-dir`.
fn fault_tolerance_flags(args: &Args, stage: &str) -> Result<FaultTolerance, String> {
    let guard_policy =
        GuardPolicy::parse(args.flags.get("guard").map(String::as_str).unwrap_or("off"))?;
    let resume = match args.flags.get("resume").map(String::as_str) {
        None | Some("never") => false,
        Some("auto") => true,
        Some(other) => return Err(format!("unknown resume mode {other:?} (auto|never)")),
    };
    let checkpointing = match args.flags.get("checkpoint-dir") {
        Some(dir) => Some(Checkpointing {
            dir: std::path::Path::new(dir).join(stage),
            every: args.usize_flag("checkpoint-every", 25)?,
            keep: args.usize_flag("checkpoint-keep", 3)?,
            resume,
        }),
        None => {
            if resume {
                return Err("--resume auto needs --checkpoint-dir".into());
            }
            None
        }
    };
    let stop_after = match args.flags.get("stop-after") {
        Some(_) => Some(args.usize_flag("stop-after", 0)?),
        None => None,
    };
    let die_at_step = match args.flags.get("die-at-step") {
        Some(_) => Some(args.usize_flag("die-at-step", 0)?),
        None => None,
    };
    let flight_dir = args.flags.get("flight-dir").map(std::path::PathBuf::from);
    Ok(FaultTolerance {
        guard: GuardConfig { flight_dir, ..GuardConfig::with_policy(guard_policy) },
        checkpointing,
        stop: None,
        stop_after,
        die_at_step,
    })
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.flags.get("out").ok_or("--out FILE required")?;
    let seed = args.u64_flag("seed", 17)?;
    let steps = args.usize_flag("steps", 200)?;
    let retrain_steps = args.usize_flag("retrain", 120)?;
    // Per-step JSONL telemetry: `FILE` gets stage-1 records, `FILE.retrain`
    // the stage-2 records.
    let telemetry = args.flags.get("telemetry").map(std::path::PathBuf::from);
    // Live pulse for `tele top --file`: one JSON object, atomically replaced
    // after every step of whichever stage is running.
    let heartbeat = args.flags.get("heartbeat").map(std::path::PathBuf::from);
    // Span profiling: collect a Chrome/Perfetto trace of the whole run.
    let profile = args.flags.get("profile").map(std::path::PathBuf::from);
    if profile.is_some() {
        trace::enable();
        trace::reset();
    }
    let suite = Suite::generate(args.scale()?, seed);

    let tokenizer = TeleTokenizer::train(
        suite.tele_corpus.iter(),
        &TokenizerConfig {
            bpe_merges: 500,
            special: SpecialTokenConfig::default(),
            phrases: tele_knowledge::datagen::words::DOMAIN_PHRASES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
    );
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 64,
        layers: 3,
        heads: 4,
        ffn_hidden: 128,
        max_len: 48,
        dropout: 0.1,
    };
    eprintln!("pre-training TeleBERT: {steps} steps (vocab {})", tokenizer.vocab_size());
    let (telebert, log) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig {
            steps,
            seed,
            telemetry: telemetry.clone(),
            heartbeat: heartbeat.clone(),
            fault: fault_tolerance_flags(args, "stage1")?,
            device: args.device()?,
            ..Default::default()
        },
    );
    eprintln!("  final loss {:.3}", log.final_loss);
    for o in log.summary().objectives {
        eprintln!("    {}: final {:.3}, mean {:.3}", o.name, o.last, o.mean);
    }
    if log.aborted {
        return Err("stage 1 aborted by a guardrail; checkpoint not written".into());
    }
    if log.stopped {
        println!("stage 1 stopped cooperatively; resume with --resume auto");
        return Ok(());
    }

    eprintln!("re-training KTeleBERT (IMTL): {retrain_steps} steps");
    let templates = logs::log_templates(&suite.world, &suite.episodes);
    let data = RetrainData {
        causal_sentences: &suite.causal_sentences,
        log_templates: &templates,
        kg: &suite.built_kg.kg,
    };
    let retrain_telemetry = telemetry.as_ref().map(|p| p.with_extension("retrain.jsonl"));
    let (bundle, klog) = retrain(
        telebert,
        &data,
        Strategy::Imtl,
        &RetrainConfig {
            steps: retrain_steps,
            seed,
            telemetry: retrain_telemetry,
            heartbeat,
            fault: fault_tolerance_flags(args, "stage2")?,
            device: args.device()?,
            ..Default::default()
        },
    );
    eprintln!("  final loss {:.3}", klog.final_loss);
    for o in klog.summary().objectives {
        eprintln!("    {}: final {:.3}, mean {:.3}", o.name, o.last, o.mean);
    }
    if klog.aborted {
        return Err("stage 2 aborted by a guardrail; checkpoint not written".into());
    }
    if klog.stopped {
        println!("stage 2 stopped cooperatively; resume with --resume auto");
        return Ok(());
    }

    write_atomic(std::path::Path::new(out), save_bundle(&bundle).as_bytes())
        .map_err(|e| e.to_string())?;
    println!("checkpoint written to {out}");

    if let Some(path) = profile {
        write_profile(&path)?;
    }
    Ok(())
}

/// Loads a checkpoint bundle, surfacing the typed load error's message.
fn load_ckpt(args: &Args) -> Result<tele_knowledge::model::TeleBert, String> {
    let ckpt = args.flags.get("ckpt").ok_or("--ckpt FILE required")?;
    let json = std::fs::read_to_string(ckpt).map_err(|e| format!("cannot read {ckpt}: {e}"))?;
    load_bundle(&json).map_err(|e| format!("cannot load {ckpt}: {e}"))
}

/// Telemetry knobs for a serving session: the sliding-window span and the
/// flight-dump directory (`--flight-dir none` disables dumping; notes still
/// accumulate in the in-memory ring).
fn telemetry_flags(
    args: &Args,
    default_flight_dir: Option<&str>,
) -> Result<TelemetryConfig, String> {
    let defaults = TelemetryConfig::default();
    let flight_dir = match args.flags.get("flight-dir").map(String::as_str) {
        Some("none") => None,
        Some(dir) => Some(std::path::PathBuf::from(dir)),
        None => default_flight_dir.map(std::path::PathBuf::from),
    };
    Ok(TelemetryConfig {
        window_secs: args.u64_flag("window-secs", defaults.window_secs)?,
        flight_dir,
        ..defaults
    })
}

/// Batching/cache/admission knobs shared by `encode`, `serve`, and
/// `serve-bench` (`--queue 0` disables the admission bound, `--deadline-us 0`
/// disables the default queueing deadline).
fn session_flags(args: &Args, default_flight_dir: Option<&str>) -> Result<SessionConfig, String> {
    let defaults = SessionConfig::default();
    Ok(SessionConfig {
        max_batch: args.usize_flag("batch-size", defaults.max_batch)?,
        max_wait_us: args.u64_flag("max-wait-us", defaults.max_wait_us)?,
        cache_capacity: args.usize_flag("cache", defaults.cache_capacity)?,
        queue_capacity: args.usize_flag("queue", defaults.queue_capacity)?,
        default_deadline_us: args.u64_flag("deadline-us", defaults.default_deadline_us)?,
        telemetry: telemetry_flags(args, default_flight_dir)?,
        ..defaults
    })
}

fn cmd_encode(args: &Args) -> Result<(), String> {
    // Sentences come from positional arguments, a file, or stdin ("-").
    let mut sentences = args.positional.clone();
    if let Some(path) = args.flags.get("file") {
        let text = if path == "-" {
            use std::io::Read;
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf).map_err(|e| e.to_string())?;
            buf
        } else {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        sentences.extend(text.lines().map(str::trim).filter(|l| !l.is_empty()).map(String::from));
    }
    if sentences.is_empty() {
        return Err("at least one sentence required (positional, --file FILE, or --file -)".into());
    }
    let bundle = load_ckpt(args)?;
    let mut session_cfg = session_flags(args, None)?;
    if !args.flags.contains_key("queue") {
        // Local one-shot encode: the whole input is submitted as one group,
        // so admission control would shed large files. Unbounded unless the
        // caller asks for a bound.
        session_cfg.queue_capacity = 0;
    }
    let session = InferenceSession::new(bundle, session_cfg);
    let embs = session.encode_many(&sentences).map_err(|e| e.to_string())?;
    for (s, e) in sentences.iter().zip(&embs) {
        let preview: Vec<String> = e.iter().take(6).map(|v| format!("{v:+.3}")).collect();
        println!("{s:?} -> [{} …] ({} dims)", preview.join(", "), e.len());
    }
    if embs.len() >= 2 {
        println!("\ncosine similarities:");
        for i in 0..embs.len() {
            for j in i + 1..embs.len() {
                println!("  ({i}, {j}): {:+.4}", cosine(&embs[i], &embs[j]));
            }
        }
    }
    let stats = session.shutdown();
    eprintln!(
        "encoded {} sentence(s) in {} micro-batch(es), cache hit rate {:.0}%",
        stats.requests,
        stats.batches,
        stats.cache_hit_rate * 100.0
    );
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let bundle = load_ckpt(args)?;
    // `--watch DIR` follows the checkpoint store's LATEST pointer and
    // hot-swaps the serving bundle whenever it names a new snapshot.
    let watch = match args.flags.get("watch") {
        Some(dir) => Some(WatchConfig {
            dir: std::path::PathBuf::from(dir),
            interval_ms: args.u64_flag("watch-interval-ms", 1_000)?,
        }),
        None => None,
    };
    let defaults = ServerConfig::default();
    let cfg = ServerConfig {
        addr: args.flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7077".into()),
        workers: args.usize_flag("workers", 4)?,
        accept_queue: args.usize_flag("accept-queue", defaults.accept_queue)?,
        idle_timeout_ms: args.u64_flag("idle-timeout-ms", defaults.idle_timeout_ms)?,
        watch,
        session: session_flags(args, Some("results"))?,
    };
    let handle = tele_knowledge::serve::serve(bundle, &cfg).map_err(|e| e.to_string())?;
    println!("serving on {} ({} workers)", handle.addr(), cfg.workers);
    println!("protocol: one JSON object per line, e.g.");
    println!(r#"  {{"op":"encode","texts":["link down on smf"]}}"#);
    println!(r#"  {{"op":"encode","texts":["..."],"deadline_us":5000}}"#);
    println!(r#"  {{"op":"metrics"}}  {{"op":"metrics","format":"prometheus"}}"#);
    println!(r#"  {{"op":"reload","ckpt":"path/to/bundle.json"}}"#);
    println!(r#"  {{"op":"stats"}}  {{"op":"ping"}}  {{"op":"shutdown"}}"#);
    handle.wait();
    let stats = handle.shutdown();
    eprintln!(
        "served {} request(s) in {} micro-batch(es); cache hit rate {:.0}%; \
         request p50 {:.0} us, p99 {:.0} us",
        stats.requests,
        stats.batches,
        stats.cache_hit_rate * 100.0,
        stats.request_latency.p50_us,
        stats.request_latency.p99_us
    );
    Ok(())
}

/// Runs the open-loop overload sweep (`--arrival-rps R1,R2,...`) and writes
/// `results/bench_serve_overload.json` (or `--overload-out`).
fn run_arrival_sweep(
    args: &Args,
    bundle: tele_knowledge::model::TeleBert,
    cfg: &BenchConfig,
    spec: &str,
) -> Result<(), String> {
    let rates: Vec<f64> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| format!("--arrival-rps expects comma-separated rates, got {s:?}"))
        })
        .collect::<Result<_, _>>()?;
    if rates.is_empty() {
        return Err("--arrival-rps needs at least one rate".into());
    }
    let mut cfg = cfg.clone();
    cfg.requests = args.usize_flag("arrival-requests", 120)?;
    let report = run_overload_bench(bundle, &cfg, &rates).map_err(|e| e.to_string())?;
    let out = args
        .flags
        .get("overload-out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/bench_serve_overload.json"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("{e:?}"))?;
    write_atomic(&out, json.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "overload sweep: {} requests per rate, queue capacity {}, default deadline {} us",
        report.requests_per_rate, report.queue_capacity, report.default_deadline_us
    );
    println!(
        "  {:>9} {:>9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "rps", "completed", "shed", "expired", "shed%", "p50us", "p90us", "p99us", "p999us"
    );
    for p in &report.rates {
        println!(
            "  {:>9.0} {:>9} {:>6} {:>8} {:>8.1}% {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
            p.arrival_rps,
            p.completed,
            p.shed,
            p.deadline_expired,
            p.shed_rate * 100.0,
            p.latency.p50_us,
            p.latency.p90_us,
            p.latency.p99_us,
            p.latency.p999_us
        );
    }
    println!("overload report written to {}", out.display());
    Ok(())
}

fn cmd_serve_bench(args: &Args) -> Result<(), String> {
    let bundle = load_ckpt(args)?;
    let cfg = BenchConfig {
        requests: args.usize_flag("requests", 64)?,
        unique: args.usize_flag("unique", 12)?,
        client_threads: args.usize_flag("threads", 8)?,
        session: SessionConfig {
            max_batch: args.usize_flag("batch-size", 16)?,
            max_wait_us: args.u64_flag("max-wait-us", 200)?,
            cache_capacity: args.usize_flag("cache", 256)?,
            // Unbounded by default: the closed-loop comparison submits whole
            // per-thread chunks and must never shed; the overload sweep sets
            // --queue explicitly to exercise admission control.
            queue_capacity: args.usize_flag("queue", 0)?,
            default_deadline_us: args.u64_flag("deadline-us", 0)?,
            telemetry: telemetry_flags(args, None)?,
            ..SessionConfig::default()
        },
    };
    // Open-loop overload sweep mode: fixed arrival schedules instead of the
    // closed-loop comparison.
    if let Some(spec) = args.flags.get("arrival-rps") {
        return run_arrival_sweep(args, bundle, &cfg, spec);
    }
    let report = run_bench(bundle, &cfg).map_err(|e| e.to_string())?;
    let out = args
        .flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/bench_serve.json"));
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    }
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("{e:?}"))?;
    write_atomic(&out, json.as_bytes()).map_err(|e| e.to_string())?;
    println!(
        "sequential: {:>8.1} req/s  ({:.1} ms total)",
        report.sequential_rps,
        report.sequential_ns as f64 / 1e6
    );
    println!(
        "batched:    {:>8.1} req/s  ({:.1} ms total, {} threads, mean batch {:.1})",
        report.batched_rps,
        report.batched_ns as f64 / 1e6,
        report.client_threads,
        report.mean_batch_size
    );
    println!(
        "speedup: {:.2}x; cache hit rate {:.0}%; bit-identical: {}",
        report.speedup,
        report.cache_hit_rate * 100.0,
        report.bit_identical
    );
    // Windowed quantiles with a true max: the cumulative log-bucket summary
    // underestimates tail spread on short runs (the old p50≈p99 artifact).
    let w = &report.latency_window.request_latency;
    println!(
        "request latency (window): p50 {:.0} us, p90 {:.0} us, p99 {:.0} us, \
         p999 {:.0} us, max {:.0} us",
        w.p50_us, w.p90_us, w.p99_us, w.p999_us, w.max_us
    );
    println!("report written to {}", out.display());
    if !report.bit_identical {
        return Err("batched embeddings diverged from the sequential baseline".into());
    }

    // Telemetry overhead: re-run the batched workload with tracing on vs off
    // (interleaved best-of rounds) and record the fractional slowdown.
    let rounds = args.usize_flag("overhead-rounds", 3)?;
    if rounds > 0 {
        let bundle = load_ckpt(args)?;
        let overhead = run_overhead_bench(bundle, &cfg, rounds).map_err(|e| e.to_string())?;
        let overhead_out =
            args.flags.get("overhead-out").map(std::path::PathBuf::from).unwrap_or_else(|| {
                std::path::PathBuf::from("results/bench_telemetry_overhead.json")
            });
        if let Some(dir) = overhead_out.parent() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
        let json = serde_json::to_string_pretty(&overhead).map_err(|e| format!("{e:?}"))?;
        write_atomic(&overhead_out, json.as_bytes()).map_err(|e| e.to_string())?;
        println!(
            "telemetry overhead: {:+.1}% ({:.1} vs {:.1} req/s, {} rounds, budget ≤{:.0}%) — {}",
            overhead.overhead_frac * 100.0,
            overhead.instrumented_rps,
            overhead.uninstrumented_rps,
            overhead.rounds,
            overhead.threshold * 100.0,
            if overhead.within_budget { "within budget" } else { "OVER BUDGET" }
        );
        println!("overhead report written to {}", overhead_out.display());
    }
    Ok(())
}

/// Renders one latency row of the `tele top` table.
fn top_row(name: &str, s: &tele_knowledge::serve::LatencySummary) -> String {
    format!(
        "  {name:<10} {:>8} {:>9.0} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
        s.count, s.p50_us, s.p90_us, s.p99_us, s.p999_us, s.max_us
    )
}

/// Live metrics poller: refreshes a terminal table from either a serve
/// endpoint's `metrics` op (`--addr`) or a training heartbeat file
/// (`--file`).
fn cmd_top(args: &Args) -> Result<(), String> {
    let interval = std::time::Duration::from_millis(args.u64_flag("interval-ms", 1000)?);
    let count = args.usize_flag("count", 0)?;
    let addr = args.flags.get("addr");
    let file = args.flags.get("file");
    let mut polled = 0usize;
    match (addr, file) {
        (Some(addr), None) => {
            let mut client = ServeClient::connect(addr).map_err(|e| e.to_string())?;
            loop {
                let snap = client.metrics().map_err(|e| e.to_string())?;
                polled += 1;
                // Clear the screen and home the cursor between refreshes.
                print!("\x1b[2J\x1b[H");
                println!("tele top — {addr} (window {}s, poll {polled})", snap.window_secs);
                let s = &snap.stats;
                println!(
                    "  {:.1} req/s | queue {} | in-flight {} | cache hit {:.0}% | \
                     requests {} | errors {} | flight dumps {}",
                    snap.rps_window,
                    snap.queue_depth,
                    snap.in_flight,
                    s.cache_hit_rate * 100.0,
                    s.requests,
                    s.errors,
                    s.flight_dumps
                );
                println!(
                    "  {:<10} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
                    "phase", "count", "p50us", "p90us", "p99us", "p999us", "maxus"
                );
                let w = &s.latency_window;
                println!("{}", top_row("queue", &w.queue_us));
                println!("{}", top_row("assemble", &w.assemble_us));
                println!("{}", top_row("forward", &w.forward_us));
                println!("{}", top_row("write", &w.write_us));
                println!("{}", top_row("request", &w.request_latency));
                println!("{}", top_row("batch", &w.batch_latency));
                if count > 0 && polled >= count {
                    return Ok(());
                }
                std::thread::sleep(interval);
            }
        }
        (None, Some(path)) => loop {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read heartbeat {path}: {e}"))?;
            let beat = tele_knowledge::model::Heartbeat::from_json(&text)
                .map_err(|e| format!("unparseable heartbeat {path}: {e}"))?;
            polled += 1;
            print!("\x1b[2J\x1b[H");
            println!("tele top — {path} (poll {polled})");
            println!(
                "  step {} | {:.2} steps/s | fused loss {} | live tensors {:.2} MiB | \
                 last step {} us",
                beat.step,
                beat.steps_per_sec,
                beat.fused.map_or_else(|| "-".into(), |v| format!("{v:.4}")),
                beat.live_tensor_bytes as f64 / (1024.0 * 1024.0),
                beat.micros
            );
            if count > 0 && polled >= count {
                return Ok(());
            }
            std::thread::sleep(interval);
        },
        _ => Err("exactly one of --addr HOST:PORT or --file HEARTBEAT.json required".into()),
    }
}

/// Drains the collected span events, writes the Chrome trace to `path`, and
/// prints the per-op profile table and throughput metrics to stderr.
fn write_profile(path: &std::path::Path) -> Result<(), String> {
    let events = trace::take_events();
    trace::disable();
    if events.is_empty() {
        return Err("profiling produced no span events".into());
    }
    trace::export::write_chrome_trace(path, &events)
        .map_err(|e| format!("failed to write trace {}: {e}", path.display()))?;
    let report = ProfileReport::from_events(&events);
    eprintln!("\nper-op profile ({} spans):", events.len());
    eprint!("{}", report.render());
    let snapshot = trace::metrics::snapshot();
    let gauge = |name: &str| {
        snapshot.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0.0)
    };
    eprintln!(
        "throughput: {:.1} steps/s, {:.0} tokens/s; peak tensor memory {:.2} MiB",
        gauge("train.steps_per_sec"),
        gauge("train.tokens_per_sec"),
        gauge("mem.peak_live_bytes") / (1024.0 * 1024.0),
    );
    let counter = |name: &str| {
        snapshot.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
    };
    let (hits, misses) = (counter("tensor.pool.hit"), counter("tensor.pool.miss"));
    let pool = tele_knowledge::tensor::device::pool_stats();
    eprintln!(
        "buffer pool: {hits} hits / {misses} misses ({:.0}% hit rate); {} buffers ({:.2} MiB) parked",
        100.0 * hits as f64 / (hits + misses).max(1) as f64,
        pool.buffers,
        (pool.held_elems * std::mem::size_of::<f32>()) as f64 / (1024.0 * 1024.0),
    );
    // Registry histograms: the engine's step timing plus any published
    // `serve.*` phase histograms when a serving session ran in-process.
    if !snapshot.histograms.is_empty() {
        eprintln!(
            "histograms:\n  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "p999"
        );
        for (name, h) in &snapshot.histograms {
            eprintln!(
                "  {name:<24} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
                h.count, h.p50, h.p90, h.p99, h.p999
            );
        }
    }
    eprintln!(
        "memory gauges: live {:.2} MiB, peak {:.2} MiB",
        gauge("mem.live_bytes") / (1024.0 * 1024.0),
        gauge("mem.peak_live_bytes") / (1024.0 * 1024.0),
    );
    for dev in ["ref", "fast"] {
        let (live, allocs) = (trace::mem::live_bytes_for(dev), trace::mem::alloc_count_for(dev));
        if allocs > 0 {
            eprintln!(
                "  {dev} device: {:.2} MiB live across {allocs} allocations",
                live as f64 / (1024.0 * 1024.0),
            );
        }
    }
    println!("trace written to {}", path.display());
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    if let Some(path) = args.flags.get("check") {
        return check_trace(std::path::Path::new(path));
    }
    let seed = args.u64_flag("seed", 17)?;
    let steps = args.usize_flag("steps", 5)?;
    let out = args
        .flags
        .get("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("profile.trace.json"));

    trace::enable();
    trace::reset();
    let suite = Suite::generate(args.scale()?, seed);
    let tokenizer = TeleTokenizer::train(
        suite.tele_corpus.iter(),
        &TokenizerConfig {
            bpe_merges: 200,
            special: SpecialTokenConfig::default(),
            phrases: tele_knowledge::datagen::words::DOMAIN_PHRASES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        },
    );
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 64,
        layers: 3,
        heads: 4,
        ffn_hidden: 128,
        max_len: 48,
        dropout: 0.1,
    };
    eprintln!(
        "profiling {steps} pre-training steps on the {} device (vocab {})",
        args.device()?.name(),
        tokenizer.vocab_size()
    );
    let (_telebert, log) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps, seed, device: args.device()?, ..Default::default() },
    );
    eprintln!("  final loss {:.3}", log.final_loss);
    if let Some(phases) = log.summary().mean_phases {
        eprintln!(
            "  mean step phases: forward {} us, backward {} us, optim {} us",
            phases.forward_micros, phases.backward_micros, phases.optim_micros
        );
    }
    write_profile(&out)
}

/// Writes a report to stdout (and optionally `--json FILE`), then fails the
/// command when any error-severity finding is present.
fn finish_report(args: &Args, report: &tele_knowledge::check::Report) -> Result<(), String> {
    if let Some(path) = args.flags.get("json") {
        write_atomic(std::path::Path::new(path), report.to_json().as_bytes())
            .map_err(|e| e.to_string())?;
        eprintln!("report written to {path}");
    }
    print!("{}", report.render());
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} error(s)", report.error_count()))
    }
}

fn cmd_check(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("config path required, e.g. configs/retrain.json")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let cfg = tele_knowledge::check::CheckConfig::from_json(&json)?;
    // `--resume` accepts a snapshot file or a checkpoint-store directory
    // (the newest intact snapshot is pre-flighted, mirroring `--resume auto`).
    let resume: Option<Vec<u8>> = match args.flags.get("resume") {
        None => None,
        Some(target) if std::path::Path::new(target).is_dir() => {
            let store = tele_knowledge::model::CheckpointStore::open(target, usize::MAX)
                .map_err(|e| format!("cannot open checkpoint store {target}: {e}"))?;
            match store.load_latest().map_err(|e| format!("checkpoint store {target}: {e}"))? {
                Some((step, payload)) => {
                    eprintln!("pre-flighting snapshot at step {step} from {target}");
                    Some(payload)
                }
                None => return Err(format!("checkpoint store {target} holds no snapshots")),
            }
        }
        Some(file) => Some(std::fs::read(file).map_err(|e| format!("cannot read {file}: {e}"))?),
    };
    let report = tele_knowledge::check::run_check(path, &cfg, resume.as_deref());
    finish_report(args, &report)
}

fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = args.flags.get("root").map(String::as_str).unwrap_or(".");
    // Default allowlist: `lint.allow` at the lint root, when present.
    let allow_path = match args.flags.get("allow") {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => {
            let default = std::path::Path::new(root).join("lint.allow");
            default.exists().then_some(default)
        }
    };
    let allow = match &allow_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            tele_knowledge::check::parse_allowlist(&text)?
        }
        None => Vec::new(),
    };
    let report = tele_knowledge::check::lint_workspace(std::path::Path::new(root), &allow)?;
    finish_report(args, &report)
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    let root = args.flags.get("root").map(String::as_str).unwrap_or(".");
    // Same default allowlist as `tele lint`: entries carry the rule code,
    // so one file serves both tools.
    let allow_path = match args.flags.get("allow") {
        Some(p) => Some(std::path::PathBuf::from(p)),
        None => {
            let default = std::path::Path::new(root).join("lint.allow");
            default.exists().then_some(default)
        }
    };
    let allow = match &allow_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            tele_knowledge::check::parse_allowlist(&text)?
        }
        None => Vec::new(),
    };
    let report = tele_knowledge::check::audit_workspace(
        std::path::Path::new(root),
        &args.positional,
        &allow,
    )?;
    finish_report(args, &report)
}

/// Validates a Chrome trace file: parseable JSON, a non-empty `traceEvents`
/// array of complete events, and per-tid intervals that nest or are
/// disjoint (never partially overlapping).
fn check_trace(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let parsed: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = parsed.field("traceEvents").as_arr().ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("trace contains no events".into());
    }
    let mut intervals: Vec<(u64, f64, f64)> = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        if e.field("name").as_str().is_none() {
            return Err(format!("event {i} has no name"));
        }
        if e.field("ph").as_str() != Some("X") {
            return Err(format!("event {i} is not a complete event"));
        }
        let ts = e.field("ts").as_f64().ok_or_else(|| format!("event {i} has no ts"))?;
        let dur = e.field("dur").as_f64().ok_or_else(|| format!("event {i} has no dur"))?;
        if dur < 0.0 {
            return Err(format!("event {i} has negative duration"));
        }
        let tid = e.field("tid").as_f64().unwrap_or(0.0) as u64;
        intervals.push((tid, ts, ts + dur));
    }
    for (i, a) in intervals.iter().enumerate() {
        for b in intervals.iter().skip(i + 1) {
            if a.0 != b.0 {
                continue;
            }
            let disjoint = a.2 <= b.1 || b.2 <= a.1;
            let nested = (b.1 <= a.1 && a.2 <= b.2) || (a.1 <= b.1 && b.2 <= a.2);
            if !disjoint && !nested {
                return Err(format!(
                    "events on tid {} partially overlap: [{}, {}] vs [{}, {}]",
                    a.0, a.1, a.2, b.1, b.2
                ));
            }
        }
    }
    println!("{}: {} events, well-nested", path.display(), events.len());
    Ok(())
}
