//! # tele-knowledge
//!
//! A from-scratch Rust reproduction of *Tele-Knowledge Pre-training for
//! Fault Analysis* (KTeleBERT, ICDE 2023).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`tensor`] — CPU tensors, tape autograd, transformer layers, optimizers,
//! - [`tokenizer`] — BPE, tele special tokens, prompt templates, WWM,
//! - [`kg`] — the Tele-product Knowledge Graph,
//! - [`datagen`] — the synthetic tele-world (corpora, logs, datasets),
//! - [`model`] — TeleBERT / KTeleBERT pre-training and service embeddings,
//! - [`tasks`] — the three downstream fault-analysis tasks,
//! - [`serve`] — the batched, cached inference runtime and TCP server,
//! - [`trace`] — spans, metrics, and Chrome-trace/profile exporters,
//! - [`check`] — ahead-of-time graph/shape verification and workspace lints.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end pipeline: generate a
//! tele-world, pre-train TeleBERT, re-train KTeleBERT, and deliver service
//! embeddings to a fault-analysis task.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// The tensor / autograd substrate (`tele-tensor`).
pub use tele_tensor as tensor;

/// Tokenization (`tele-tokenizer`).
pub use tele_tokenizer as tokenizer;

/// The Tele-KG (`tele-kg`).
pub use tele_kg as kg;

/// The synthetic tele-world generator (`tele-datagen`).
pub use tele_datagen as datagen;

/// The pre-training models (`ktelebert`).
pub use ktelebert as model;

/// The downstream fault-analysis tasks (`tele-tasks`).
pub use tele_tasks as tasks;

/// The inference runtime (`tele-serve`): batching sessions, the NDJSON TCP
/// server, and the serving load generator.
pub use tele_serve as serve;

/// The instrumentation layer (`tele-trace`): spans, metrics, exporters.
pub use tele_trace as trace;

/// Static analysis (`tele-check`): the `tele check` graph verifier and the
/// `tele lint` workspace linter.
pub use tele_check as check;
