//! End-to-end integration test: the full paper pipeline at smoke scale.
//!
//! tele-world → corpora/logs/Tele-KG → tokenizer → TeleBERT pre-training →
//! KTeleBERT re-training → service embeddings → all three downstream tasks.

use tele_knowledge::datagen::{logs, Scale, Suite};
use tele_knowledge::model::{
    pretrain, retrain, PretrainConfig, RetrainConfig, RetrainData, ServiceFormat, Strategy,
};
use tele_knowledge::tasks::{
    random_embeddings, run_eap, run_fct, run_rca, service_embeddings, EapTaskConfig, FctTaskConfig,
    RcaTaskConfig,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

#[test]
fn full_pipeline_smoke() {
    let suite = Suite::generate(Scale::Smoke, 101);
    assert!(!suite.causal_sentences.is_empty());

    // Tokenizer + tiny TeleBERT.
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 2,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };
    let (telebert, log) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 15, batch_size: 4, ..Default::default() },
    );
    assert!(log.final_loss.is_finite());

    // KTeleBERT (IMTL).
    let templates = logs::log_templates(&suite.world, &suite.episodes);
    let data = RetrainData {
        causal_sentences: &suite.causal_sentences,
        log_templates: &templates,
        kg: &suite.built_kg.kg,
    };
    let (ktelebert, klog) = retrain(
        telebert,
        &data,
        Strategy::Imtl,
        &RetrainConfig { steps: 15, batch_size: 4, ke_batch: 2, ..Default::default() },
    );
    assert!(klog.final_loss.is_finite());
    assert!(ktelebert.model.anenc.is_some());

    // Service embeddings for event names.
    let names: Vec<String> =
        (0..suite.world.num_events()).map(|e| suite.world.event_name(e).to_string()).collect();
    let emb = service_embeddings(
        &ktelebert,
        Some(&suite.built_kg.kg),
        &names,
        ServiceFormat::EntityWithAttr,
    )
    .expect("encode");
    assert_eq!(emb.len(), names.len());
    assert!(emb.rows.iter().all(|r| r.iter().all(|v| v.is_finite())));

    // All three downstream tasks run end-to-end on those embeddings.
    let rca = run_rca(&suite.rca, &emb, &RcaTaskConfig { epochs: 2, ..Default::default() });
    assert!(rca.mean.mr >= 1.0);
    assert!(rca.mean.hits1 >= 0.0 && rca.mean.hits1 <= 100.0);

    let neighbors: Vec<Vec<usize>> =
        (0..suite.world.instances.len()).map(|i| suite.world.instance_neighbors(i)).collect();
    let eap =
        run_eap(&suite.eap, &emb, &neighbors, &EapTaskConfig { epochs: 2, ..Default::default() });
    assert!(eap.mean.accuracy > 0.0);

    let node_emb =
        service_embeddings(&ktelebert, None, &suite.fct.node_names, ServiceFormat::OnlyName)
            .expect("encode");
    let fct = run_fct(&suite.fct, &node_emb, &FctTaskConfig { epochs: 3, ..Default::default() });
    assert!(fct.test.mrr > 0.0);
}

#[test]
fn jsonl_telemetry_records_every_objective() {
    use tele_knowledge::model::StepRecord;

    let suite = Suite::generate(Scale::Smoke, 103);
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 1,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };

    let dir = std::env::temp_dir().join(format!("tele-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pre_path = dir.join("pretrain.jsonl");
    let re_path = dir.join("retrain.jsonl");

    let (telebert, plog) = pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig {
            steps: 8,
            batch_size: 4,
            telemetry: Some(pre_path.clone()),
            ..Default::default()
        },
    );

    // Stage 1: one JSONL line per step; every record carries all three
    // objectives and the fused loss equals the weighted sum.
    let lines: Vec<StepRecord> = std::fs::read_to_string(&pre_path)
        .unwrap()
        .lines()
        .map(|l| StepRecord::from_json(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 8);
    for (i, r) in lines.iter().enumerate() {
        assert_eq!(r.step, i, "step indices must be sequential");
        assert!(r.lr > 0.0);
        let names: Vec<&str> = r.objectives.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(names, ["mlm", "rtd", "simcse"]);
        assert!(r.objectives.iter().all(|o| o.loss.is_finite()));
        let weighted: f32 = r.objectives.iter().map(|o| o.weight * o.loss).sum();
        let fused = r.fused.expect("stage-1 steps never abstain");
        assert!(
            (fused - weighted).abs() <= 1e-3 * fused.abs().max(1.0),
            "fused {fused} != weighted sum {weighted} at step {i}"
        );
        assert!(r.uncertainty.is_none(), "no ANEnc in stage 1");
    }
    // In-memory trace and JSONL sink see the same records.
    assert_eq!(plog.records.len(), lines.len());
    assert_eq!(plog.records[3].fused, lines[3].fused);

    // Stage 2 (IMTL): records carry the active objective subset and μ₁–μ₃.
    let templates = logs::log_templates(&suite.world, &suite.episodes);
    let data = RetrainData {
        causal_sentences: &suite.causal_sentences,
        log_templates: &templates,
        kg: &suite.built_kg.kg,
    };
    let (ktelebert, _) = retrain(
        telebert,
        &data,
        Strategy::Imtl,
        &RetrainConfig {
            steps: 12,
            batch_size: 4,
            ke_batch: 2,
            telemetry: Some(re_path.clone()),
            ..Default::default()
        },
    );
    assert!(ktelebert.model.anenc.is_some());
    let lines: Vec<StepRecord> = std::fs::read_to_string(&re_path)
        .unwrap()
        .lines()
        .map(|l| StepRecord::from_json(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 12);
    let mut saw_mask = false;
    let mut saw_ke = false;
    for r in &lines {
        let mu = r.uncertainty.as_ref().expect("ANEnc attached -> μ recorded");
        assert_eq!(mu.len(), 3, "μ₁–μ₃");
        assert!(mu.iter().all(|v| v.is_finite()));
        for o in &r.objectives {
            assert!(["mask", "num", "ke"].contains(&o.name.as_str()));
            assert!(o.loss.is_finite());
            saw_mask |= o.name == "mask";
            saw_ke |= o.name == "ke";
        }
        if let Some(fused) = r.fused {
            let weighted: f32 = r.objectives.iter().map(|o| o.weight * o.loss).sum();
            assert!((fused - weighted).abs() <= 1e-3 * fused.abs().max(1.0));
        }
    }
    assert!(saw_mask, "IMTL schedules mask-reconstruction steps");
    assert!(saw_ke, "IMTL schedules KE steps");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn random_embeddings_flow_through_all_tasks() {
    let suite = Suite::generate(Scale::Smoke, 102);
    let names: Vec<String> =
        (0..suite.world.num_events()).map(|e| suite.world.event_name(e).to_string()).collect();
    let emb = random_embeddings(&names, 32, 0).expect("encode");
    let rca = run_rca(&suite.rca, &emb, &RcaTaskConfig { epochs: 2, ..Default::default() });
    assert!(rca.folds.len() == 5);

    let node_emb = random_embeddings(&suite.fct.node_names, 32, 1).expect("encode");
    let fct = run_fct(&suite.fct, &node_emb, &FctTaskConfig { epochs: 2, ..Default::default() });
    assert!(fct.test.mr >= 1.0);
}
