//! Integration tests of the service-delivery layer: checkpoint round-trips
//! across crates, delivery formats, and determinism guarantees.

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::model::{
    load_bundle, pretrain, save_bundle, Pooling, PretrainConfig, ServiceEncoder, ServiceFormat,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

fn trained_bundle(suite: &Suite) -> tele_knowledge::model::TeleBert {
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 1,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };
    pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 10, batch_size: 4, ..Default::default() },
    )
    .0
}

#[test]
fn checkpoint_roundtrip_preserves_service_embeddings() {
    let suite = Suite::generate(Scale::Smoke, 77);
    let bundle = trained_bundle(&suite);
    let names: Vec<String> = (0..4).map(|e| suite.world.event_name(e).to_string()).collect();

    let kg = &suite.built_kg.kg;
    let before = ServiceEncoder::new(&bundle, Some(kg))
        .encode(&names, ServiceFormat::EntityWithAttr)
        .expect("encode");
    let restored = load_bundle(&save_bundle(&bundle)).expect("load");
    let after = ServiceEncoder::new(&restored, Some(kg))
        .encode(&names, ServiceFormat::EntityWithAttr)
        .expect("encode");
    assert_eq!(before, after);
}

#[test]
fn delivery_formats_are_distinct_but_deterministic() {
    let suite = Suite::generate(Scale::Smoke, 78);
    let bundle = trained_bundle(&suite);
    let kg = &suite.built_kg.kg;
    let names = vec![suite.world.event_name(0).to_string()];
    let svc = ServiceEncoder::new(&bundle, Some(kg));

    let a1 = svc.encode(&names, ServiceFormat::OnlyName).expect("encode");
    let a2 = svc.encode(&names, ServiceFormat::OnlyName).expect("encode");
    assert_eq!(a1, a2, "eval-mode encoding must be deterministic");

    let b = svc.encode(&names, ServiceFormat::EntityNoAttr).expect("encode");
    let c = svc.encode(&names, ServiceFormat::EntityWithAttr).expect("encode");
    assert_ne!(a1[0], b[0]);
    assert_ne!(b[0], c[0]);
}

#[test]
fn pooling_strategies_differ() {
    let suite = Suite::generate(Scale::Smoke, 79);
    let bundle = trained_bundle(&suite);
    let enc = bundle.tokenizer.encode(suite.world.event_name(0), bundle.model.encoder.cfg.max_len);
    let cls =
        bundle.encode_encodings_pooled(std::slice::from_ref(&enc), Pooling::Cls).expect("encode");
    let mean =
        bundle.encode_encodings_pooled(std::slice::from_ref(&enc), Pooling::Mean).expect("encode");
    assert_eq!(cls[0].len(), mean[0].len());
    assert_ne!(cls[0], mean[0]);
}
