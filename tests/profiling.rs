//! Integration tests for the instrumentation layer over the real training
//! stack: span coverage of a pre-training run, wall-clock attribution, and
//! memory-gauge balance (no leak in tape retention).

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::model::{pretrain, PretrainConfig};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};
use tele_knowledge::trace::{self, export::ProfileReport};

fn tiny_encoder(vocab: usize) -> TransformerConfig {
    TransformerConfig {
        vocab,
        dim: 32,
        layers: 1,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    }
}

/// All instrumentation state is thread-local; run on a dedicated thread so
/// parallel tests can't interleave spans or memory events.
fn isolated<T: Send>(f: impl FnOnce() -> T + Send) -> T {
    std::thread::scope(|s| s.spawn(f).join().unwrap())
}

#[test]
fn pretrain_spans_cover_the_stack_and_attribute_wall_clock() {
    isolated(|| {
        let suite = Suite::generate(Scale::Smoke, 104);
        let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
        trace::enable();
        trace::reset();
        let (_telebert, log) = pretrain(
            &suite.tele_corpus,
            &tokenizer,
            tiny_encoder(tokenizer.vocab_size()),
            &PretrainConfig { steps: 3, batch_size: 4, ..Default::default() },
        );
        let events = trace::take_events();
        let snapshot = trace::metrics::snapshot();
        trace::disable();

        let report = ProfileReport::from_events(&events);
        let row = |name: &str| {
            report
                .rows
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("span {name:?} missing from profile"))
        };

        // The whole stack shows up: tokenizer encode (corpus pool), engine
        // phases, model/transformer forward, backward, optimizer, and every
        // stage-1 objective.
        for name in [
            "tokenizer.encode",
            "engine.step",
            "engine.batch",
            "engine.forward",
            "engine.backward",
            "model.encode",
            "transformer.forward",
            "transformer.embed",
            "attention.forward",
            "tensor.matmul",
            "tape.backward",
            "optim.step",
            "objective.mlm",
            "objective.rtd",
            "objective.simcse",
        ] {
            assert!(row(name).calls > 0);
        }
        assert_eq!(row("engine.step").calls, 3);
        assert_eq!(row("optim.step").calls, 3);

        // Self times partition the root durations exactly, so the profile
        // table attributes 100% of root wall-clock to named spans.
        let self_sum: u64 = report.rows.iter().map(|r| r.self_ns).sum();
        assert_eq!(self_sum, report.wall_ns);

        // The engine.step spans cover >= 90% of the wall-clock the trace
        // records attribute to training steps.
        let step_micros: u64 = log.records.iter().map(|r| r.micros).sum();
        let step_span_ns = row("engine.step").total_ns;
        assert!(
            step_span_ns as f64 >= 0.9 * (step_micros as f64 * 1_000.0),
            "engine.step spans ({step_span_ns} ns) must cover the recorded \
             step time ({step_micros} us)"
        );

        // Phase breakdown lands in the step records and roughly fills each
        // step (forward + backward + optim within the recorded duration).
        for r in &log.records {
            let p = r.phases.as_ref().expect("engine writes phase timings");
            assert!(p.forward_micros + p.backward_micros + p.optim_micros <= r.micros + 1);
            assert!(p.forward_micros > 0);
        }

        // Metrics registry: throughput counters and per-objective activity.
        let counter = |name: &str| {
            snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or_else(|| panic!("counter {name:?} missing"))
        };
        assert_eq!(counter("train.steps"), 3);
        assert!(counter("train.tokens") > 0);
        assert_eq!(counter("objective.mlm.active"), 3);
        assert!(snapshot.gauges.iter().any(|(n, v)| n == "train.steps_per_sec" && *v > 0.0));
        assert!(snapshot.gauges.iter().any(|(n, v)| n == "mem.peak_live_bytes" && *v > 0.0));
        let (_, hist) = snapshot
            .histograms
            .iter()
            .find(|(n, _)| n == "engine.step_us")
            .expect("step histogram");
        assert_eq!(hist.count, 3);
        assert!(hist.p50 <= hist.p99);
    });
}

#[test]
fn memory_gauge_returns_to_baseline_after_training() {
    isolated(|| {
        let suite = Suite::generate(Scale::Smoke, 105);
        let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
        trace::enable();
        trace::reset();

        // Warm-up run: model construction, lazily created optimizer moments,
        // and every train-step allocation, all dropped before the baseline
        // reading.
        let warmup = pretrain(
            &suite.tele_corpus,
            &tokenizer,
            tiny_encoder(tokenizer.vocab_size()),
            &PretrainConfig { steps: 1, batch_size: 4, ..Default::default() },
        );
        drop(warmup);
        let baseline = trace::mem::live_bytes();
        trace::mem::reset_peak();

        // Real run: training must not retain tensors once its artifacts are
        // dropped — the tape, gradients, moments, and model all free.
        let run = pretrain(
            &suite.tele_corpus,
            &tokenizer,
            tiny_encoder(tokenizer.vocab_size()),
            &PretrainConfig { steps: 3, batch_size: 4, ..Default::default() },
        );
        let during = trace::mem::live_bytes();
        assert!(during > baseline, "a live model must hold tensor memory");
        assert!(trace::mem::peak_live_bytes() >= during);
        drop(run);
        let after = trace::mem::live_bytes();
        trace::disable();

        assert_eq!(after, baseline, "memory gauge must return to baseline: {after} != {baseline}");
    });
}
