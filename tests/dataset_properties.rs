//! Property-based integration tests over the data-generation pipeline:
//! invariants that must hold for *any* seed and scale parameters.

use proptest::prelude::*;

use tele_knowledge::datagen::logs::{simulate, LogSimConfig};
use tele_knowledge::datagen::{TeleWorld, WorldConfig};
use tele_knowledge::kg::Literal;

fn small_world_config() -> impl Strategy<Value = WorldConfig> {
    (any::<u64>(), 3usize..8, 1usize..4, 8usize..24, 2usize..10).prop_map(
        |(seed, ne_types, inst, alarms, kpis)| WorldConfig {
            seed,
            ne_types,
            instances_per_type: inst,
            alarms,
            kpis,
            avg_out_degree: 1.5,
            expert_coverage: 0.6,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn world_dag_is_acyclic_for_any_seed(cfg in small_world_config()) {
        let w = TeleWorld::generate(cfg);
        // Kahn's algorithm consumes every event iff the graph is a DAG.
        let n = w.num_events();
        let mut indeg = vec![0usize; n];
        for e in &w.causal_edges {
            indeg[e.dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = queue.pop() {
            seen += 1;
            for e in w.causal_edges.iter().filter(|e| e.src == u) {
                indeg[e.dst] -= 1;
                if indeg[e.dst] == 0 {
                    queue.push(e.dst);
                }
            }
        }
        prop_assert_eq!(seen, n);
    }

    #[test]
    fn episodes_follow_ground_truth(cfg in small_world_config(), sim_seed in any::<u64>()) {
        let w = TeleWorld::generate(cfg);
        let eps = simulate(&w, &LogSimConfig { seed: sim_seed, episodes: 5, ..Default::default() });
        for ep in &eps {
            // Every non-root activation must correspond to a causal edge,
            // and times must increase along parent links.
            for a in &ep.activations {
                if let Some(p) = a.parent {
                    let parent = &ep.activations[p];
                    prop_assert!(a.time > parent.time);
                    prop_assert!(w
                        .causal_edges
                        .iter()
                        .any(|e| e.src == parent.event && e.dst == a.event));
                }
            }
        }
    }

    #[test]
    fn kg_attributes_and_triples_consistent(cfg in small_world_config()) {
        let w = TeleWorld::generate(cfg);
        let built = tele_knowledge::datagen::kg_build::build_kg(&w);
        let kg = &built.kg;
        // Numeric attributes are all normalized impacts or baselines in [0, 1].
        for e in kg.entity_ids() {
            for (name, v) in kg.attributes(e) {
                if let Literal::Number(v) = v {
                    prop_assert!((0.0..=1.0).contains(v), "attribute {name} = {v}");
                }
            }
        }
        // Every triple's endpoints exist.
        for t in kg.triples() {
            prop_assert!(!kg.surface(t.head).is_empty());
            prop_assert!(!kg.surface(t.tail).is_empty());
        }
    }

    #[test]
    fn rca_graphs_are_well_formed(cfg in small_world_config(), sim_seed in any::<u64>()) {
        let w = TeleWorld::generate(cfg);
        let eps = simulate(&w, &LogSimConfig { seed: sim_seed, episodes: 6, ..Default::default() });
        let ds = tele_knowledge::datagen::downstream::rca::RcaDataset::build(&w, &eps);
        for g in &ds.graphs {
            prop_assert!(g.root < g.nodes.len());
            prop_assert_eq!(g.features.len(), g.nodes.len());
            for &(a, b) in &g.edges {
                prop_assert!(a < g.nodes.len() && b < g.nodes.len());
            }
            // The root node carries at least one abnormal event.
            prop_assert!(g.features[g.root].iter().sum::<f32>() >= 1.0);
        }
    }

    #[test]
    fn fct_splits_disjoint(cfg in small_world_config(), sim_seed in any::<u64>()) {
        let w = TeleWorld::generate(cfg);
        let eps = simulate(&w, &LogSimConfig { seed: sim_seed, episodes: 20, ..Default::default() });
        let ds = tele_knowledge::datagen::downstream::fct::FctDataset::build(&w, &eps, 3);
        let mut all: Vec<_> = ds.all_facts().map(|f| (f.head, f.rel, f.tail)).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), total, "duplicate facts across splits");
        for f in ds.all_facts() {
            prop_assert!(f.head < ds.num_nodes() && f.tail < ds.num_nodes());
            prop_assert!(f.rel < ds.num_relations());
            prop_assert!(f.conf > 0.0 && f.conf <= 1.0);
        }
    }
}
