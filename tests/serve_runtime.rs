//! Integration tests of the serving runtime against a trained bundle:
//! concurrent sessions must return bit-identical embeddings to the plain
//! encode path, and the TCP server must round-trip them unchanged.

use std::sync::{Arc, Mutex};

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::model::{pretrain, EncodeError, PretrainConfig, TeleBert};
use tele_knowledge::serve::{
    serve, InferenceSession, ServeClient, ServeError, ServerConfig, SessionConfig, TelemetryConfig,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

/// One result slot per client thread: its chunk's embeddings or the first
/// error it hit.
type ThreadSlots = Mutex<Vec<Option<Result<Vec<Vec<f32>>, ServeError>>>>;

fn trained_bundle(suite: &Suite) -> TeleBert {
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 1,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };
    pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 10, batch_size: 4, ..Default::default() },
    )
    .0
}

/// Request texts drawn from the tele-corpus, with enough repetition to
/// exercise both the cache and in-batch deduplication.
fn workload(suite: &Suite, requests: usize, unique: usize) -> Vec<String> {
    (0..requests).map(|i| suite.tele_corpus[i % unique].clone()).collect()
}

#[test]
fn concurrent_session_matches_solo_encode_bit_for_bit() {
    let suite = Suite::generate(Scale::Smoke, 91);
    let bundle = trained_bundle(&suite);
    let texts = workload(&suite, 32, 6);

    // Ground truth: each sentence encoded alone, straight through the model.
    let solo: Vec<Vec<f32>> = texts
        .iter()
        .map(|t| bundle.encode_batch(std::slice::from_ref(t)).expect("solo encode").swap_remove(0))
        .collect();

    let session = InferenceSession::new(
        bundle,
        SessionConfig { max_batch: 8, max_wait_us: 300, cache_capacity: 64, ..Default::default() },
    );
    let threads = 8;
    let chunk = texts.len().div_ceil(threads);
    let results: ThreadSlots = Mutex::new((0..threads).map(|_| None).collect());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let session = &session;
            let texts = &texts;
            let results = &results;
            scope.spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(texts.len());
                let r = session.encode_many(&texts[lo..hi]);
                results.lock().expect("results lock")[t] = Some(r);
            });
        }
    });

    let mut batched: Vec<Vec<f32>> = Vec::with_capacity(texts.len());
    for slot in results.lock().expect("results lock").iter_mut() {
        batched.extend(slot.take().expect("thread finished").expect("encode_many"));
    }
    assert_eq!(batched.len(), solo.len());
    for (i, (a, b)) in solo.iter().zip(&batched).enumerate() {
        assert_eq!(a.len(), b.len(), "request {i}: dimension mismatch");
        for (j, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "request {i} dim {j}: batched encode must be bit-identical to solo"
            );
        }
    }

    let stats = session.shutdown();
    assert_eq!(stats.requests, texts.len() as u64);
    assert_eq!(stats.errors, 0);
    assert!(
        stats.cache_hits + stats.cache_misses > 0 && stats.cache_hits > 0,
        "repeated texts must hit the cache: {stats:?}"
    );
}

#[test]
fn tcp_server_round_trips_embeddings_and_typed_errors() {
    let suite = Suite::generate(Scale::Smoke, 92);
    let bundle = trained_bundle(&suite);
    let texts = workload(&suite, 6, 3);
    let expected = bundle.encode_batch(&texts).expect("direct encode");

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        session: SessionConfig {
            max_batch: 4,
            max_wait_us: 300,
            cache_capacity: 32,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(bundle, &cfg).expect("serve");
    let addr = handle.addr().to_string();

    // Concurrent clients each encode the full workload; every reply must
    // carry the exact bits of the direct encode.
    let expected = Arc::new(expected);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let addr = &addr;
            let texts = &texts;
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                assert!(client.ping().is_ok());
                let rows = client.encode(texts.clone()).expect("encode over tcp");
                assert_eq!(rows.len(), expected.len());
                for (a, b) in expected.iter().zip(&rows) {
                    let same = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
                    assert!(same, "wire round-trip must preserve f32 bits");
                }
            });
        }
    });

    // Typed failure over the wire: an empty batch is a client error, not a
    // dropped connection.
    let mut client = ServeClient::connect(&addr).expect("connect");
    let err = client.encode(vec![]).expect_err("empty batch must fail");
    assert!(matches!(err, ServeError::Encode(EncodeError::EmptyBatch)), "{err:?}");
    client.ping().expect("connection survives the typed error");

    let stats = handle.shutdown();
    // The empty batch was rejected before reaching the batcher, so it counts
    // as neither a request nor an error.
    assert_eq!(stats.errors, 0, "{stats:?}");
    assert_eq!(stats.requests, 18, "three clients x six texts: {stats:?}");
}

#[test]
fn request_ids_propagate_end_to_end_over_tcp() {
    let suite = Suite::generate(Scale::Smoke, 93);
    let bundle = trained_bundle(&suite);
    let texts = workload(&suite, 4, 2);

    let flight_dir = std::env::temp_dir().join(format!("tele-flight-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&flight_dir).ok();
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        session: SessionConfig {
            max_batch: 4,
            max_wait_us: 300,
            cache_capacity: 32,
            telemetry: TelemetryConfig {
                flight_dir: Some(flight_dir.clone()),
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(bundle, &cfg).expect("serve");
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // A client-chosen request id must come back on the reply.
    let (rows, echoed) = client.encode_with_id(texts.clone(), 4242).expect("encode with id");
    assert_eq!(rows.len(), texts.len());
    assert_eq!(echoed, Some(4242), "server must echo the client's request id");

    // The metrics op sees the traffic: cumulative and windowed latency both
    // counted the request, and the phase histograms are live.
    let snap = client.metrics().expect("metrics op");
    assert_eq!(snap.stats.requests, texts.len() as u64);
    assert_eq!(snap.stats.latency_window.request_latency.count, texts.len() as u64);
    assert!(snap.stats.phases.queue_us.count > 0, "queue phase must be sampled: {snap:?}");
    assert!(snap.rps_window > 0.0, "windowed rps must be live: {snap:?}");
    let prom = client.metrics_prometheus().expect("prometheus op");
    assert!(prom.contains("serve_requests"), "{prom}");
    assert!(prom.contains("quantile=\"0.999\""), "{prom}");

    // A typed error under a configured flight dir dumps the ring, and the
    // dump names the offending request id.
    let err = client.encode(vec![]).expect_err("empty batch must fail");
    assert!(matches!(err, ServeError::Encode(EncodeError::EmptyBatch)), "{err:?}");
    let snap = client.metrics().expect("metrics after error");
    assert_eq!(snap.stats.flight_dumps, 1, "{snap:?}");
    let dumps: Vec<_> = std::fs::read_dir(&flight_dir)
        .expect("flight dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("flight_") && name.ends_with(".json")
        })
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one flight dump expected");
    let text = std::fs::read_to_string(dumps[0].path()).expect("readable dump");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("dump is valid JSON");
    let notes = parsed.field("notes").as_arr();
    assert!(notes.is_some_and(|n| !n.is_empty()), "{text}");
    assert!(text.contains("empty_batch"), "dump must describe the error: {text}");

    handle.shutdown();
    std::fs::remove_dir_all(&flight_dir).ok();
}
