//! Chaos tests for the fault-tolerant training runtime.
//!
//! Every fault class the harness can inject is exercised here against the
//! recovery path that must absorb it:
//!
//! - poisoned losses / exploding gradients / finite spikes → engine
//!   guardrails under each policy (skip, rollback + LR backoff + escalation,
//!   abort),
//! - bit flips, truncation, torn writes, failing writers → checkpoint-store
//!   envelope validation and snapshot fallback,
//! - killed runs → `--resume auto` continuing **bit-identically** with an
//!   uninterrupted run (per-step RNG + exact f32 round-trip),
//! - arbitrary garbage fed to every load path → typed errors, never panics.

use std::path::PathBuf;
use std::sync::OnceLock;

use rand::rngs::StdRng;
use rand::SeedableRng;

use tele_knowledge::datagen::{corpus, TeleWorld, WorldConfig};
use tele_knowledge::model::objective::SimCse;
use tele_knowledge::model::{
    encode_stage_checkpoint, load_bundle, load_checkpoint, pretrain, restore_stage_checkpoint,
    ActivationSchedule, CheckpointError, CheckpointSink, CheckpointStore, Checkpointing,
    EngineConfig, EngineState, FailingIo, FaultTolerance, FaultyObjective, GuardAction,
    GuardConfig, GuardKind, GuardPolicy, LossFault, MaskingConfig, ModelConfig, PretrainConfig,
    StepData, TeleModel, TornIo, TrainEngine, TrainTrace,
};
use tele_knowledge::tensor::optim::AdamWState;
use tele_knowledge::tensor::{nn::TransformerConfig, ParamStore};
use tele_knowledge::tokenizer::{Encoding, TeleTokenizer, TokenizerConfig};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tele-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_world() -> TeleWorld {
    TeleWorld::generate(WorldConfig {
        seed: 3,
        ne_types: 4,
        instances_per_type: 2,
        alarms: 10,
        kpis: 4,
        avg_out_degree: 1.5,
        expert_coverage: 0.8,
    })
}

/// Shared corpus + tokenizer (tokenizer training is the expensive part of
/// each harness run, so build it once for the whole suite).
fn corpus_pool() -> &'static (Vec<String>, TeleTokenizer) {
    static POOL: OnceLock<(Vec<String>, TeleTokenizer)> = OnceLock::new();
    POOL.get_or_init(|| {
        let world = tiny_world();
        let sentences = corpus::tele_corpus(
            &world,
            &corpus::CorpusConfig { seed: 1, sentences: 120, splice_fraction: 0.0 },
        );
        let tokenizer = TeleTokenizer::train(sentences.iter(), &TokenizerConfig::default());
        (sentences, tokenizer)
    })
}

fn tiny_encoder(vocab: usize) -> TransformerConfig {
    TransformerConfig {
        vocab,
        dim: 16,
        layers: 1,
        heads: 2,
        ffn_hidden: 32,
        max_len: 32,
        dropout: 0.1,
    }
}

/// Runs a single-objective engine with faults injected into its loss and
/// returns the trace. The SimCSE objective is self-supervised, so the rig
/// needs no labels — just the shared corpus.
fn guarded_run(
    guard: GuardConfig,
    faults: Vec<(usize, LossFault)>,
    persistent: bool,
    steps: usize,
) -> TrainTrace {
    let (sentences, tokenizer) = corpus_pool();
    let encodings: Vec<Encoding> = sentences.iter().map(|s| tokenizer.encode(s, 32)).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = TeleModel::new(
        &mut store,
        "m",
        &ModelConfig { encoder: tiny_encoder(tokenizer.vocab_size()), anenc: None },
        &mut rng,
    );
    let schedule = ActivationSchedule::always(ActivationSchedule::group(&[0]), steps);
    let mut engine =
        TrainEngine::new(EngineConfig { seed: 5, guard, ..EngineConfig::default() }, schedule);
    let mut faulty = FaultyObjective::new(Box::new(SimCse::new(0.05, 1.0)), faults);
    if persistent {
        faulty = faulty.persistent();
    }
    engine.add_objective(Box::new(faulty));
    let data = StepData {
        pool: &encodings,
        batch_size: 4,
        mask: MaskingConfig::stage1(),
        tokenizer,
        normalizer: None,
    };
    engine.run(&mut store, &model, &data)
}

/// Guard config with spike detection off, isolating the finite checks.
fn finite_only(policy: GuardPolicy) -> GuardConfig {
    GuardConfig { spike_window: 0, ..GuardConfig::with_policy(policy) }
}

#[test]
fn guard_skip_rides_through_injected_nan() {
    let trace = guarded_run(finite_only(GuardPolicy::Skip), vec![(3, LossFault::Nan)], true, 8);
    assert!(!trace.aborted && !trace.stopped);
    assert_eq!(trace.records.len(), 8, "skip must not shorten the run");
    assert_eq!(trace.guard_events, 1);
    let hit = &trace.records[3];
    let event = hit.guard.as_ref().expect("step 3 must trip the guard");
    assert_eq!(event.kind, GuardKind::NanLoss);
    assert_eq!(event.action, GuardAction::Skipped);
    assert!(hit.fused.is_none(), "a poisoned fused loss must not be reported as a value");
    for (i, r) in trace.records.iter().enumerate() {
        if i != 3 {
            assert!(r.guard.is_none());
            assert!(r.fused.is_some_and(f32::is_finite), "step {i} should be clean");
        }
    }
}

#[test]
fn guard_abort_stops_run_before_poisoning_params() {
    let trace = guarded_run(finite_only(GuardPolicy::Abort), vec![(2, LossFault::Nan)], true, 8);
    assert!(trace.aborted);
    assert_eq!(trace.records.len(), 3, "abort stops at the poisoned step");
    let last = trace.records.last().unwrap();
    assert_eq!(last.step, 2);
    assert_eq!(last.guard.as_ref().unwrap().action, GuardAction::Aborted);
}

#[test]
fn guard_rollback_recovers_and_backs_off_lr() {
    let trace =
        guarded_run(finite_only(GuardPolicy::Rollback), vec![(3, LossFault::Nan)], false, 8);
    assert!(!trace.aborted);
    // 0,1,2,3(trip) then a full replay 0..8 from the run-start restore point.
    assert_eq!(trace.records.len(), 12);
    let event = trace.records[3].guard.as_ref().unwrap();
    assert_eq!(event.kind, GuardKind::NanLoss);
    assert_eq!(event.action, GuardAction::RolledBack);
    assert_eq!(trace.records[4].step, 0, "replay restarts at the restore point");
    assert_eq!(trace.records.last().unwrap().step, 7, "replay completes the schedule");
    // The transient fault fires once, so its step is clean on replay.
    assert!(trace.records[7].guard.is_none());
    assert!(trace.records[7].fused.is_some_and(f32::is_finite));
    // LR backoff: every replayed step runs at half the original rate.
    let before = trace.records[0].lr;
    let after = trace.records[4].lr;
    assert!((after - before * 0.5).abs() < 1e-9, "lr {after} should be half of {before}");
}

#[test]
fn guard_rollback_escalates_to_abort_on_persistent_fault() {
    let guard = GuardConfig { max_recoveries: 2, ..finite_only(GuardPolicy::Rollback) };
    let trace = guarded_run(guard, vec![(2, LossFault::Nan)], true, 6);
    // A fault that replays identically can never be rolled away: two
    // rollbacks, then escalation.
    assert!(trace.aborted);
    assert_eq!(trace.records.len(), 9, "three attempts of steps 0..=2");
    let actions: Vec<GuardAction> =
        trace.records.iter().filter_map(|r| r.guard.as_ref()).map(|e| e.action).collect();
    assert_eq!(actions, [GuardAction::RolledBack, GuardAction::RolledBack, GuardAction::Aborted]);
}

#[test]
fn guard_catches_exploding_gradients_post_backward() {
    let trace =
        guarded_run(finite_only(GuardPolicy::Skip), vec![(2, LossFault::Explode(1e30))], true, 6);
    assert!(!trace.aborted);
    assert_eq!(trace.records.len(), 6);
    let hit = &trace.records[2];
    let event = hit.guard.as_ref().expect("overflowing backward must trip the gradient guard");
    assert_eq!(event.kind, GuardKind::NanGrad, "loss stays finite; the gradient norm does not");
    assert_eq!(event.action, GuardAction::Skipped);
    assert!(hit.grad_norm.is_some_and(|n| !n.is_finite()));
    // Skipping the poisoned update keeps the rest of the run clean.
    assert!(trace.records[3..].iter().all(|r| r.fused.is_some_and(f32::is_finite)));
}

#[test]
fn guard_spike_detector_flags_finite_jumps() {
    let guard = GuardConfig { spike_window: 3, ..GuardConfig::with_policy(GuardPolicy::Skip) };
    let trace = guarded_run(guard, vec![(5, LossFault::Spike(40.0))], true, 8);
    assert!(!trace.aborted);
    assert_eq!(trace.records.len(), 8);
    let event = trace.records[5].guard.as_ref().expect("40x the rolling mean must trip");
    assert_eq!(event.kind, GuardKind::LossSpike);
    assert_eq!(event.action, GuardAction::Skipped);
    assert_eq!(trace.guard_events, 1, "ordinary steps must not trip the detector");
}

/// Test-local sink mirroring the trainer's: full-store stage checkpoints
/// into a [`CheckpointStore`] (here one with fault-injected IO).
struct Saver {
    cs: CheckpointStore,
}

impl CheckpointSink for Saver {
    fn save(
        &mut self,
        step: usize,
        store: &ParamStore,
        state: &EngineState,
    ) -> Result<(), CheckpointError> {
        self.cs.save(step as u64, &encode_stage_checkpoint(store, state)).map(|_| ())
    }
}

#[test]
fn failing_writer_never_kills_training_and_keeps_old_snapshots() {
    let dir = tmp_dir("failing-writer");
    let (sentences, tokenizer) = corpus_pool();
    let encodings: Vec<Encoding> = sentences.iter().map(|s| tokenizer.encode(s, 32)).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = TeleModel::new(
        &mut store,
        "m",
        &ModelConfig { encoder: tiny_encoder(tokenizer.vocab_size()), anenc: None },
        &mut rng,
    );
    let schedule = ActivationSchedule::always(ActivationSchedule::group(&[0]), 6);
    let mut engine =
        TrainEngine::new(EngineConfig { seed: 5, ..EngineConfig::default() }, schedule);
    engine.add_objective(Box::new(SimCse::new(0.05, 1.0)));
    // Each store save issues two writes (snapshot + LATEST): the step-2
    // flush succeeds, every later one hits the injected failure.
    let cs = CheckpointStore::with_io(&dir, 3, Box::new(FailingIo::after(2))).unwrap();
    engine.set_checkpointing(2, Box::new(Saver { cs }));
    let data = StepData {
        pool: &encodings,
        batch_size: 4,
        mask: MaskingConfig::stage1(),
        tokenizer,
        normalizer: None,
    };
    let trace = engine.run(&mut store, &model, &data);
    assert!(!trace.aborted, "a broken disk must not kill a good run");
    assert_eq!(trace.records.len(), 6, "training continues through failed saves");

    // The surviving snapshot is intact and restores into a fresh model.
    let reopened = CheckpointStore::open(&dir, 3).unwrap();
    let (step, payload) = reopened.load_latest().unwrap().expect("step-2 snapshot survived");
    assert_eq!(step, 2);
    let mut rng2 = StdRng::seed_from_u64(5);
    let mut store2 = ParamStore::new();
    let _model2 = TeleModel::new(
        &mut store2,
        "m",
        &ModelConfig { encoder: tiny_encoder(tokenizer.vocab_size()), anenc: None },
        &mut rng2,
    );
    let state = restore_stage_checkpoint(&mut store2, &payload).unwrap();
    assert_eq!(state.completed, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_write_is_detected_and_falls_back_to_intact_snapshot() {
    let dir = tmp_dir("torn");
    // Writes per save: snapshot, LATEST. Tearing write #3 leaves snapshot 1
    // and both pointers intact but halves snapshot 2 on disk.
    let mut store = CheckpointStore::with_io(&dir, 3, Box::new(TornIo::every(3))).unwrap();
    store.save(1, b"good-one").unwrap();
    store.save(2, b"newer-but-torn").unwrap();
    let (step, payload) = store.load_latest().unwrap().expect("an intact snapshot exists");
    assert_eq!(step, 1, "the torn newest snapshot must be rejected");
    assert_eq!(payload, b"good-one");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_inputs_error_instead_of_panicking() {
    for junk in ["", "{", "{}", "[1,2,3]", "null", "\"checkpoint\"", "{\"params\": 3}"] {
        assert!(load_bundle(junk).is_err(), "load_bundle({junk:?}) must fail cleanly");
        assert!(load_checkpoint(junk).is_err(), "load_checkpoint({junk:?}) must fail cleanly");
    }
    use tele_knowledge::model::decode_stage_checkpoint;
    assert!(decode_stage_checkpoint(&[0xFF, 0xFE, 0x01]).is_err(), "non-UTF-8 payload");
    assert!(decode_stage_checkpoint(b"{}").is_err(), "missing fields");

    // A structurally valid stage checkpoint whose parameters match nothing
    // in the target store is a typed error, not silent acceptance.
    let empty = ParamStore::new();
    let state = EngineState {
        completed: 0,
        optimizer: AdamWState { step: 0, moments: vec![], no_decay: vec![] },
        total_steps: 4,
    };
    let payload = encode_stage_checkpoint(&empty, &state);
    let mut target = ParamStore::new();
    assert!(matches!(
        restore_stage_checkpoint(&mut target, &payload),
        Err(CheckpointError::NoParamsLoaded)
    ));
}

#[test]
fn resume_rejects_checkpoints_from_a_different_model() {
    let (_, tokenizer) = corpus_pool();
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let _model = TeleModel::new(
        &mut store,
        "m",
        &ModelConfig { encoder: tiny_encoder(tokenizer.vocab_size()), anenc: None },
        &mut rng,
    );
    let schedule = ActivationSchedule::always(ActivationSchedule::group(&[0]), 8);
    let mut engine = TrainEngine::new(EngineConfig::default(), schedule);

    // Optimizer moments naming a parameter this store has never seen: the
    // snapshot belongs to another model, and importing it would silently
    // drop the moments (drift). Resume must refuse instead.
    let alien = EngineState {
        completed: 1,
        optimizer: AdamWState {
            step: 1,
            moments: vec![("ghost.weight".to_string(), vec![0.0], vec![0.0])],
            no_decay: vec![],
        },
        total_steps: 8,
    };
    match engine.resume(&store, &alien) {
        Err(CheckpointError::StateMismatch { missing }) => {
            assert_eq!(missing, ["ghost.weight"]);
        }
        other => panic!("expected StateMismatch, got {other:?}"),
    }

    // A progress marker past the schedule end is impossible, not resumable.
    let overrun = EngineState {
        completed: 99,
        optimizer: AdamWState { step: 99, moments: vec![], no_decay: vec![] },
        total_steps: 8,
    };
    assert!(matches!(engine.resume(&store, &overrun), Err(CheckpointError::Invalid(_))));
}

#[test]
fn stop_and_resume_matches_uninterrupted_run_bit_for_bit() {
    let dir = tmp_dir("stop-resume");
    let (sentences, tokenizer) = corpus_pool();
    let encoder = tiny_encoder(tokenizer.vocab_size());
    let base = PretrainConfig { steps: 12, batch_size: 4, seed: 11, ..Default::default() };

    // Reference: the uninterrupted run.
    let (_, full) = pretrain(sentences, tokenizer, encoder.clone(), &base);
    assert_eq!(full.records.len(), 12);

    // Chaos: the same run stopped cooperatively after 5 steps (the stop
    // flag is the in-process stand-in for SIGTERM), flushing a final
    // checkpoint on the way out.
    let stopped_cfg = PretrainConfig {
        fault: FaultTolerance {
            checkpointing: Some(Checkpointing {
                dir: dir.clone(),
                every: 0,
                keep: 3,
                resume: true,
            }),
            stop_after: Some(5),
            ..Default::default()
        },
        ..base.clone()
    };
    let (_, part1) = pretrain(sentences, tokenizer, encoder.clone(), &stopped_cfg);
    assert!(part1.stopped, "the stop flag must interrupt the run");
    assert!(!part1.aborted);
    assert_eq!(part1.records.len(), 5);

    // Resume: picks up from the flushed snapshot and finishes the schedule.
    let resumed_cfg = PretrainConfig {
        fault: FaultTolerance {
            checkpointing: Some(Checkpointing::auto(dir.clone(), 0)),
            ..Default::default()
        },
        ..base.clone()
    };
    let (_, part2) = pretrain(sentences, tokenizer, encoder, &resumed_cfg);
    assert!(!part2.stopped);
    assert_eq!(part2.records.first().unwrap().step, 5, "resume continues at the stopped step");
    assert_eq!(part2.records.len(), 7);

    // Bit-identical telemetry: the interrupted prefix and the resumed tail
    // together reproduce the uninterrupted run exactly — f32 bit patterns,
    // not approximate equality.
    for (a, b) in part1.records.iter().zip(&full.records[..5]) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.fused.unwrap().to_bits(), b.fused.unwrap().to_bits());
    }
    for (a, b) in part2.records.iter().zip(&full.records[5..]) {
        assert_eq!(a.step, b.step);
        assert_eq!(a.lr.to_bits(), b.lr.to_bits(), "LR schedule must not drift across resume");
        assert_eq!(
            a.fused.unwrap().to_bits(),
            b.fused.unwrap().to_bits(),
            "step {} diverged after resume",
            a.step
        );
    }
    assert_eq!(part2.final_loss.to_bits(), full.final_loss.to_bits());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_falls_back_past_a_corrupted_snapshot() {
    let dir = tmp_dir("resume-fallback");
    let (sentences, tokenizer) = corpus_pool();
    let encoder = tiny_encoder(tokenizer.vocab_size());
    let base = PretrainConfig { steps: 12, batch_size: 4, seed: 19, ..Default::default() };

    // Produce snapshots at steps 2, 4, 6, then stop.
    let cfg = PretrainConfig {
        fault: FaultTolerance {
            checkpointing: Some(Checkpointing {
                dir: dir.clone(),
                every: 2,
                keep: 10,
                resume: true,
            }),
            stop_after: Some(6),
            ..Default::default()
        },
        ..base.clone()
    };
    let (_, part1) = pretrain(sentences, tokenizer, encoder.clone(), &cfg);
    assert!(part1.stopped);

    // Corrupt the newest snapshot on disk with a payload bit flip.
    let snapshots = CheckpointStore::open(&dir, 10).unwrap().snapshots();
    assert_eq!(snapshots.first().map(|(s, _)| *s), Some(6));
    let newest = snapshots[0].1.clone();
    let mut bytes = std::fs::read(&newest).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&newest, bytes).unwrap();

    // Resume detects the corruption and continues from the step-4 snapshot.
    let resume_cfg = PretrainConfig {
        fault: FaultTolerance {
            checkpointing: Some(Checkpointing {
                dir: dir.clone(),
                every: 2,
                keep: 10,
                resume: true,
            }),
            ..Default::default()
        },
        ..base.clone()
    };
    let (_, part2) = pretrain(sentences, tokenizer, encoder.clone(), &resume_cfg);
    assert_eq!(part2.records.first().unwrap().step, 4, "fell back to the older intact snapshot");
    assert_eq!(part2.records.last().unwrap().step, 11);
    assert!(part2.final_loss.is_finite());

    // With every snapshot destroyed, resume degrades to a fresh start — a
    // damaged checkpoint directory must never be fatal.
    for (_, path) in CheckpointStore::open(&dir, 10).unwrap().snapshots() {
        std::fs::write(&path, b"total garbage").unwrap();
    }
    let (_, part3) = pretrain(sentences, tokenizer, encoder, &resume_cfg);
    assert_eq!(part3.records.first().unwrap().step, 0, "all-corrupt store restarts from scratch");
    assert_eq!(part3.records.len(), 12);
    let _ = std::fs::remove_dir_all(&dir);
}
