//! Chaos suite for the serving layer: deliberate overload, injected worker
//! panics, slow-loris and torn connections, and checkpoint rollover under
//! fire. Extends the training-side fault-injection discipline (see
//! `tests/chaos.rs`-style harnesses in crates/core) to `tele serve`: every
//! failure here must surface as a typed error or a clean close — never a
//! hang, never a crash, never changed bits.

use std::io::{Read as IoRead, Write as IoWrite};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use tele_knowledge::datagen::{Scale, Suite};
use tele_knowledge::model::{load_bundle, pretrain, save_bundle, PretrainConfig, TeleBert};
use tele_knowledge::serve::{
    serve, ClientConfig, InferenceSession, ServeClient, ServeError, ServeFault, ServerConfig,
    SessionConfig,
};
use tele_knowledge::tensor::nn::TransformerConfig;
use tele_knowledge::tokenizer::{TeleTokenizer, TokenizerConfig};

fn train(suite: &Suite) -> TeleBert {
    let tokenizer = TeleTokenizer::train(suite.tele_corpus.iter(), &TokenizerConfig::default());
    let encoder = TransformerConfig {
        vocab: tokenizer.vocab_size(),
        dim: 32,
        layers: 1,
        heads: 2,
        ffn_hidden: 64,
        max_len: 48,
        dropout: 0.1,
    };
    pretrain(
        &suite.tele_corpus,
        &tokenizer,
        encoder,
        &PretrainConfig { steps: 10, batch_size: 4, ..Default::default() },
    )
    .0
}

/// Bundles are expensive to train, so each is trained once per process and
/// shared between tests as serialized JSON (load_bundle is cheap and the
/// round-trip is bit-exact).
fn bundle_a() -> TeleBert {
    static SAVED: OnceLock<String> = OnceLock::new();
    let json = SAVED.get_or_init(|| save_bundle(&train(&Suite::generate(Scale::Smoke, 81))));
    load_bundle(json).expect("bundle A round-trip")
}

fn bundle_b() -> TeleBert {
    static SAVED: OnceLock<String> = OnceLock::new();
    let json = SAVED.get_or_init(|| save_bundle(&train(&Suite::generate(Scale::Smoke, 82))));
    load_bundle(json).expect("bundle B round-trip")
}

fn texts(n: usize) -> Vec<String> {
    let suite = Suite::generate(Scale::Smoke, 81);
    (0..n).map(|i| suite.tele_corpus[i % suite.tele_corpus.len()].clone()).collect()
}

fn solo_bits(bundle: &TeleBert, text: &str) -> Vec<u32> {
    bundle
        .encode_batch(std::slice::from_ref(&text.to_string()))
        .expect("solo encode")
        .swap_remove(0)
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

fn bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|x| x.to_bits()).collect()
}

/// Past the queue bound, submissions shed instantly with a typed
/// `Overloaded` carrying the observed depth, and multi-text groups shed
/// all-or-nothing: no partial batch ever enters the queue.
#[test]
fn overload_sheds_atomically_with_typed_errors() {
    let texts = texts(8);
    let session = InferenceSession::new(
        bundle_a(),
        SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            queue_capacity: 2,
            fault: ServeFault::SlowBatch(150),
            ..Default::default()
        },
    );

    // Primer: popped by the batcher almost immediately, after which the
    // injected 150 ms stall keeps the queue from draining.
    let primer = session.encode_async(&texts[0], 1, None).expect("primer admitted");
    std::thread::sleep(Duration::from_millis(60));

    // The queue holds exactly `queue_capacity` singles...
    let t1 = session.encode_async(&texts[1], 2, None).expect("slot 1 admitted");
    let t2 = session.encode_async(&texts[2], 3, None).expect("slot 2 admitted");
    // ...then sheds, reporting depth and capacity.
    match session.encode_async(&texts[3], 4, None) {
        Err(ServeError::Overloaded { depth, capacity }) => {
            assert_eq!((depth, capacity), (2, 2));
        }
        other => panic!("expected typed shed, got {other:?}"),
    }
    // A group that cannot fit in full is shed in full.
    let group: Vec<String> = texts[4..7].to_vec();
    match session.encode_many_with_deadline(&group, 5, None) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("expected group shed, got {other:?}"),
    }

    // Shed counter: 1 single + 3-row group, counted at the enqueue boundary.
    assert_eq!(session.stats().shed, 4);
    // Admitted work is unaffected by the shedding around it.
    for t in [primer, t1, t2] {
        t.wait().expect("admitted request completes");
    }
    let stats = session.shutdown();
    assert_eq!(stats.shed, 4, "{stats:?}");
    assert_eq!(stats.errors, 0, "sheds are not errors: {stats:?}");
}

/// Queued work whose deadline lapses before the batcher drains it expires
/// with a typed `DeadlineExceeded` — it is never forwarded through the
/// model.
#[test]
fn expired_deadlines_are_typed_and_never_forwarded() {
    let texts = texts(4);
    let session = InferenceSession::new(
        bundle_a(),
        SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            queue_capacity: 0,
            default_deadline_us: 30_000,
            fault: ServeFault::SlowBatch(120),
            ..Default::default()
        },
    );

    // The primer drains well inside its 30 ms deadline; everything queued
    // behind it waits out the 120 ms stall and must expire.
    let primer = session.encode_async(&texts[0], 1, None).expect("primer admitted");
    let late: Vec<_> = texts[1..4]
        .iter()
        .enumerate()
        .map(|(i, t)| session.encode_async(t, 2 + i as u64, None).expect("admitted"))
        .collect();

    primer.wait().expect("primer beats its deadline");
    for t in late {
        match t.wait() {
            Err(ServeError::DeadlineExceeded { waited_us, deadline_us }) => {
                assert!(waited_us >= deadline_us, "{waited_us} vs {deadline_us}");
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
    }
    let stats = session.shutdown();
    assert_eq!(stats.deadline_expired, 3, "{stats:?}");
    assert_eq!(stats.encoded_sentences, 1, "expired work must not reach the model: {stats:?}");
}

/// An injected panic inside the forward pass surfaces as a typed internal
/// error for the requests in that micro-batch; the batcher survives and
/// later batches serve correct bits.
#[test]
fn worker_panic_is_contained_as_a_typed_error() {
    let texts = texts(2);
    let bundle = bundle_a();
    let expected = solo_bits(&bundle, &texts[1]);
    let session = InferenceSession::new(
        bundle,
        SessionConfig {
            max_batch: 1,
            cache_capacity: 0,
            fault: ServeFault::PanicOnBatch(1),
            ..Default::default()
        },
    );

    match session.encode(&texts[0]) {
        Err(ServeError::Internal(msg)) => assert!(msg.contains("panic"), "{msg}"),
        other => panic!("expected typed panic containment, got {other:?}"),
    }
    let row = session.encode(&texts[1]).expect("session survives the panic");
    assert_eq!(bits(&row), expected, "post-panic batches still serve exact bits");
    let stats = session.shutdown();
    assert!(stats.errors >= 1, "{stats:?}");
}

/// A slow-loris connection — bytes trickling in with no complete frame —
/// is cut by the idle timeout instead of pinning a worker forever.
#[test]
fn slow_loris_connection_is_cut_by_the_idle_timeout() {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        idle_timeout_ms: 200,
        session: SessionConfig { cache_capacity: 0, ..Default::default() },
        ..Default::default()
    };
    let handle = serve(bundle_a(), &cfg).expect("serve");
    let addr = handle.addr().to_string();

    let mut loris = TcpStream::connect(&addr).expect("connect");
    loris.write_all(b"{\"op\":\"pi").expect("partial frame");
    loris.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut buf = [0u8; 64];
    let n = loris.read(&mut buf).expect("server must close, not hang");
    assert_eq!(n, 0, "idle cut is a clean EOF, not a reply");

    // The freed worker serves the next well-behaved client.
    let mut client = ServeClient::connect(&addr).expect("connect");
    client.ping().expect("server healthy after the loris is cut");
    handle.shutdown();
}

/// A connection torn mid-frame (EOF without a trailing newline) closes
/// cleanly on the server side and takes nothing else down.
#[test]
fn torn_connection_mid_frame_closes_cleanly() {
    let texts = texts(2);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        session: SessionConfig { cache_capacity: 0, ..Default::default() },
        ..Default::default()
    };
    let bundle = bundle_a();
    let expected = solo_bits(&bundle, &texts[0]);
    let handle = serve(bundle, &cfg).expect("serve");
    let addr = handle.addr().to_string();

    let mut torn = TcpStream::connect(&addr).expect("connect");
    torn.write_all(b"{\"op\":\"encode\",\"texts\":[\"alarm").expect("partial frame");
    torn.shutdown(std::net::Shutdown::Write).expect("tear the connection");
    torn.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let mut buf = [0u8; 64];
    let n = torn.read(&mut buf).expect("server must close, not hang");
    assert_eq!(n, 0, "a torn frame gets no reply, just a close");

    let mut client = ServeClient::connect(&addr).expect("connect");
    let rows = client.encode(vec![texts[0].clone()]).expect("encode after the tear");
    assert_eq!(bits(&rows[0]), expected);
    handle.shutdown();
}

/// Hot rollover invariants, asserted at the bit level: in-flight batches
/// finish on the bundle they started on, the embedding cache flushes on
/// version change, and post-swap answers match a cold session on the new
/// bundle exactly.
#[test]
fn rollover_is_bit_identical_and_flushes_the_cache() {
    let texts = texts(3);
    let a = bundle_a();
    let b = bundle_b();
    let a_bits_0 = solo_bits(&a, &texts[0]);
    let a_bits_1 = solo_bits(&a, &texts[1]);
    let b_bits_0 = solo_bits(&b, &texts[0]);
    assert_ne!(a_bits_0, b_bits_0, "distinct bundles must disagree for this test to mean anything");

    let session = InferenceSession::new(
        a,
        SessionConfig {
            max_batch: 1,
            cache_capacity: 16,
            fault: ServeFault::SlowBatch(80),
            ..Default::default()
        },
    );
    assert_eq!(session.model_version(), 1);

    // Cache a pre-swap answer.
    let row = session.encode(&texts[0]).expect("encode on A");
    assert_eq!(bits(&row), a_bits_0);

    // Put a request in flight on A, then swap to B while it runs.
    let inflight = session.encode_async(&texts[1], 7, None).expect("admitted");
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(session.install(b), 2, "install bumps the model version");

    // The in-flight batch finishes on the bundle it started on: A's bits.
    let row = inflight.wait().expect("in-flight survives the swap");
    assert_eq!(bits(&row), a_bits_1, "in-flight work must finish on the old bundle");

    // The cached pre-swap answer is gone: the same text now returns B's
    // bits, identical to a cold encode on B.
    let row = session.encode(&texts[0]).expect("encode on B");
    assert_eq!(bits(&row), b_bits_0, "post-swap answers must match cold bundle B");

    let stats = session.shutdown();
    assert_eq!(stats.rollovers, 1, "{stats:?}");
}

/// Wire-level rollover under fire: a corrupt candidate is rejected with a
/// typed checkpoint error and the old model keeps serving its exact bits;
/// a valid candidate then swaps in and serves *its* exact bits.
#[test]
fn wire_reload_rejects_corrupt_candidates_and_swaps_valid_ones() {
    let texts = texts(1);
    let a = bundle_a();
    let b = bundle_b();
    let a_bits = solo_bits(&a, &texts[0]);
    let b_bits = solo_bits(&b, &texts[0]);

    let dir = std::env::temp_dir().join(format!("tele-chaos-reload-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("temp ckpt dir");
    let corrupt = dir.join("corrupt.json");
    std::fs::write(&corrupt, "{\"this is\": \"not a bundle\"").expect("write corrupt");
    let valid = dir.join("b.json");
    std::fs::write(&valid, save_bundle(&b)).expect("write valid");

    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        session: SessionConfig { cache_capacity: 16, ..Default::default() },
        ..Default::default()
    };
    let handle = serve(a, &cfg).expect("serve");
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).expect("connect");

    let rows = client.encode(texts.clone()).expect("encode on A");
    assert_eq!(bits(&rows[0]), a_bits);

    // Corrupt candidate: typed rejection, no swap, old bits keep flowing.
    let err = client
        .reload(corrupt.to_str().expect("utf8 path"))
        .expect_err("corrupt bundle must be rejected");
    assert!(matches!(err, ServeError::Checkpoint(_)), "{err:?}");
    let rows = client.encode(texts.clone()).expect("still serving A");
    assert_eq!(bits(&rows[0]), a_bits, "failed reload must not disturb the model");
    assert_eq!(client.metrics().expect("metrics").model_version, 1);

    // Valid candidate: version bump, B's exact bits.
    let version = client.reload(valid.to_str().expect("utf8 path")).expect("valid reload");
    assert_eq!(version, 2);
    let rows = client.encode(texts).expect("encode on B");
    assert_eq!(bits(&rows[0]), b_bits, "post-reload answers must match cold bundle B");

    let stats = handle.shutdown();
    assert_eq!(stats.rollovers, 1, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A client that hits a shed retries with backoff and succeeds once the
/// queue drains — overload degrades to latency, not failure, for
/// idempotent requests.
#[test]
fn client_retries_through_overload_and_succeeds() {
    let texts = texts(4);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        session: SessionConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_capacity: 0,
            queue_capacity: 1,
            fault: ServeFault::SlowBatch(60),
            ..Default::default()
        },
        ..Default::default()
    };
    let bundle = bundle_a();
    let expected = solo_bits(&bundle, &texts[3]);
    let handle = serve(bundle, &cfg).expect("serve");
    let addr = handle.addr().to_string();

    // Fill the pipeline through the shared session: one request in the
    // batcher's 60 ms stall, one occupying the single queue slot.
    let primer = handle.session().encode_async(&texts[0], 1, None).expect("primer");
    std::thread::sleep(Duration::from_millis(30));
    let filler = handle.session().encode_async(&texts[1], 2, None).expect("filler");

    let mut client = ServeClient::connect_with(
        &addr,
        ClientConfig { retries: 6, backoff_base_ms: 25, ..Default::default() },
    )
    .expect("connect");
    let rows = client.encode(vec![texts[3].clone()]).expect("retry must eventually land");
    assert_eq!(bits(&rows[0]), expected, "retried answers carry exact bits");
    assert!(client.retries_used() >= 1, "the first attempt must have been shed");

    primer.wait().expect("primer");
    filler.wait().expect("filler");
    let stats = handle.shutdown();
    assert!(stats.shed >= 1, "{stats:?}");
}

/// The same overload pattern sheds the same requests every time: admission
/// decisions are a function of queue state, not scheduling luck.
#[test]
fn shed_schedule_is_reproducible() {
    fn run_schedule(bundle: TeleBert, texts: &[String]) -> (Vec<bool>, u64) {
        let session = InferenceSession::new(
            bundle,
            SessionConfig {
                max_batch: 1,
                max_wait_us: 0,
                cache_capacity: 0,
                queue_capacity: 3,
                fault: ServeFault::SlowBatch(250),
                ..Default::default()
            },
        );
        // Primer enters the batcher's stall; the burst then lands against a
        // frozen queue, so admission is decided purely by capacity.
        let primer = session.encode_async(&texts[0], 1, None).expect("primer");
        std::thread::sleep(Duration::from_millis(80));
        let mut admitted = Vec::new();
        let mut tickets = Vec::new();
        for (i, text) in texts[1..9].iter().enumerate() {
            match session.encode_async(text, 2 + i as u64, None) {
                Ok(t) => {
                    admitted.push(true);
                    tickets.push(t);
                }
                Err(ServeError::Overloaded { .. }) => admitted.push(false),
                Err(other) => panic!("unexpected error in schedule: {other:?}"),
            }
        }
        primer.wait().expect("primer");
        for t in tickets {
            t.wait().expect("admitted request completes");
        }
        (admitted, session.shutdown().shed)
    }

    let texts = texts(9);
    let (first, shed_first) = run_schedule(bundle_a(), &texts);
    let (second, shed_second) = run_schedule(bundle_a(), &texts);
    assert_eq!(first, second, "identical overload pattern must shed identically");
    assert_eq!(shed_first, shed_second);
    assert_eq!(first, vec![true, true, true, false, false, false, false, false]);
    assert_eq!(shed_first, 5);
}
